// Package rel implements a small calculus of finite binary relations over
// integer-identified elements (events). It mirrors the "cat" notation used
// by axiomatic memory models: union, intersection, difference, relational
// composition (;), inverse (^-1), identity on a set ([A]), transitive
// closure (+), reflexive-transitive closure (*), and the acyclicity and
// irreflexivity tests that consistency axioms are built from.
//
// Relations are mutable adjacency-set structures; all operators return a
// fresh relation and never alias the operands' internal state.
package rel

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is a finite binary relation over elements identified by int IDs.
// The zero value is not ready for use; call New.
type Relation struct {
	succ map[int]map[int]struct{}
}

// Pair is one ordered edge of a relation.
type Pair struct {
	From, To int
}

// New returns an empty relation.
func New() *Relation {
	return &Relation{succ: make(map[int]map[int]struct{})}
}

// FromPairs builds a relation containing exactly the given edges.
func FromPairs(pairs ...Pair) *Relation {
	r := New()
	for _, p := range pairs {
		r.Add(p.From, p.To)
	}
	return r
}

// Add inserts the edge (a, b). Adding an existing edge is a no-op.
func (r *Relation) Add(a, b int) {
	s, ok := r.succ[a]
	if !ok {
		s = make(map[int]struct{})
		r.succ[a] = s
	}
	s[b] = struct{}{}
}

// Has reports whether the edge (a, b) is present.
func (r *Relation) Has(a, b int) bool {
	s, ok := r.succ[a]
	if !ok {
		return false
	}
	_, ok = s[b]
	return ok
}

// Size returns the number of edges.
func (r *Relation) Size() int {
	n := 0
	for _, s := range r.succ {
		n += len(s)
	}
	return n
}

// IsEmpty reports whether the relation has no edges.
func (r *Relation) IsEmpty() bool { return r.Size() == 0 }

// Pairs returns all edges in deterministic (sorted) order.
func (r *Relation) Pairs() []Pair {
	var out []Pair
	for a, s := range r.succ {
		for b := range s {
			out = append(out, Pair{a, b})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Clone returns a deep copy of r.
func (r *Relation) Clone() *Relation {
	c := New()
	for a, s := range r.succ {
		cs := make(map[int]struct{}, len(s))
		for b := range s {
			cs[b] = struct{}{}
		}
		c.succ[a] = cs
	}
	return c
}

// Union returns r ∪ others.
func (r *Relation) Union(others ...*Relation) *Relation {
	out := r.Clone()
	for _, o := range others {
		for a, s := range o.succ {
			for b := range s {
				out.Add(a, b)
			}
		}
	}
	return out
}

// Union returns the union of all given relations (empty if none).
func Union(rs ...*Relation) *Relation {
	out := New()
	return out.Union(rs...)
}

// Intersect returns r ∩ o.
func (r *Relation) Intersect(o *Relation) *Relation {
	out := New()
	for a, s := range r.succ {
		for b := range s {
			if o.Has(a, b) {
				out.Add(a, b)
			}
		}
	}
	return out
}

// Minus returns r \ o.
func (r *Relation) Minus(o *Relation) *Relation {
	out := New()
	for a, s := range r.succ {
		for b := range s {
			if !o.Has(a, b) {
				out.Add(a, b)
			}
		}
	}
	return out
}

// Seq returns the relational composition r ; o:
// (a, c) ∈ r;o iff ∃b. (a, b) ∈ r ∧ (b, c) ∈ o.
func (r *Relation) Seq(o *Relation) *Relation {
	out := New()
	for a, s := range r.succ {
		for b := range s {
			if t, ok := o.succ[b]; ok {
				for c := range t {
					out.Add(a, c)
				}
			}
		}
	}
	return out
}

// Seq composes the given relations left to right. Seq() of a single relation
// returns a clone; Seq of none returns the empty relation.
func Seq(rs ...*Relation) *Relation {
	if len(rs) == 0 {
		return New()
	}
	out := rs[0].Clone()
	for _, o := range rs[1:] {
		out = out.Seq(o)
	}
	return out
}

// Inverse returns r^-1: (b, a) for every (a, b) in r.
func (r *Relation) Inverse() *Relation {
	out := New()
	for a, s := range r.succ {
		for b := range s {
			out.Add(b, a)
		}
	}
	return out
}

// Identity returns [A], the identity relation on the given set of elements.
func Identity(set []int) *Relation {
	out := New()
	for _, a := range set {
		out.Add(a, a)
	}
	return out
}

// Domain returns the set of elements with at least one outgoing edge,
// in sorted order.
func (r *Relation) Domain() []int {
	var out []int
	for a, s := range r.succ {
		if len(s) > 0 {
			out = append(out, a)
		}
	}
	sort.Ints(out)
	return out
}

// Codomain returns the set of elements with at least one incoming edge,
// in sorted order.
func (r *Relation) Codomain() []int {
	seen := make(map[int]struct{})
	for _, s := range r.succ {
		for b := range s {
			seen[b] = struct{}{}
		}
	}
	out := make([]int, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// TransitiveClosure returns r+, the least transitive relation containing r.
func (r *Relation) TransitiveClosure() *Relation {
	out := r.Clone()
	// Gather all vertices mentioned by the relation.
	verts := make(map[int]struct{})
	for a, s := range r.succ {
		verts[a] = struct{}{}
		for b := range s {
			verts[b] = struct{}{}
		}
	}
	// Floyd–Warshall style closure; fine for litmus-scale graphs.
	for k := range verts {
		for a := range verts {
			if !out.Has(a, k) {
				continue
			}
			if s, ok := out.succ[k]; ok {
				for b := range s {
					out.Add(a, b)
				}
			}
		}
	}
	return out
}

// ReflexiveTransitiveClosure returns r* over the given carrier set.
func (r *Relation) ReflexiveTransitiveClosure(carrier []int) *Relation {
	out := r.TransitiveClosure()
	for _, a := range carrier {
		out.Add(a, a)
	}
	return out
}

// Irreflexive reports whether no element is related to itself.
func (r *Relation) Irreflexive() bool {
	for a, s := range r.succ {
		if _, ok := s[a]; ok {
			return false
		}
	}
	return true
}

// Acyclic reports whether r+ is irreflexive, i.e. the directed graph induced
// by r has no cycle.
func (r *Relation) Acyclic() bool {
	// DFS-based cycle detection avoids building the full closure.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[int]int)
	var stack []int
	for a := range r.succ {
		if color[a] != white {
			continue
		}
		// Iterative DFS with an explicit "post" marker.
		stack = stack[:0]
		stack = append(stack, a)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			if color[n] == white {
				color[n] = grey
				for b := range r.succ[n] {
					switch color[b] {
					case grey:
						return false
					case white:
						stack = append(stack, b)
					}
				}
			} else {
				if color[n] == grey {
					color[n] = black
				}
				stack = stack[:len(stack)-1]
			}
		}
	}
	return true
}

// RestrictDomain returns r with edges limited to those whose source is in set.
func (r *Relation) RestrictDomain(set map[int]bool) *Relation {
	out := New()
	for a, s := range r.succ {
		if !set[a] {
			continue
		}
		for b := range s {
			out.Add(a, b)
		}
	}
	return out
}

// RestrictCodomain returns r with edges limited to those whose target is in set.
func (r *Relation) RestrictCodomain(set map[int]bool) *Relation {
	out := New()
	for a, s := range r.succ {
		for b := range s {
			if set[b] {
				out.Add(a, b)
			}
		}
	}
	return out
}

// Filter returns the edges of r satisfying keep.
func (r *Relation) Filter(keep func(a, b int) bool) *Relation {
	out := New()
	for a, s := range r.succ {
		for b := range s {
			if keep(a, b) {
				out.Add(a, b)
			}
		}
	}
	return out
}

// Equal reports whether r and o contain exactly the same edges.
func (r *Relation) Equal(o *Relation) bool {
	if r.Size() != o.Size() {
		return false
	}
	for a, s := range r.succ {
		for b := range s {
			if !o.Has(a, b) {
				return false
			}
		}
	}
	return true
}

// TotalOrders enumerates every strict total order over elems as a relation,
// invoking fn for each. fn must not retain the relation. Enumeration stops
// early if fn returns false. Used to enumerate coherence orders.
func TotalOrders(elems []int, fn func(*Relation) bool) {
	perm := make([]int, len(elems))
	copy(perm, elems)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(perm) {
			r := New()
			for i := 0; i < len(perm); i++ {
				for j := i + 1; j < len(perm); j++ {
					r.Add(perm[i], perm[j])
				}
			}
			return fn(r)
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if !rec(k + 1) {
				perm[k], perm[i] = perm[i], perm[k]
				return false
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return true
	}
	rec(0)
}

// String renders the relation as a sorted edge list, for debugging.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range r.Pairs() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d->%d", p.From, p.To)
	}
	b.WriteByte('}')
	return b.String()
}
