//go:build relmap

package rel

import "sort"

// Relation is the reference nested-map implementation, selected by the
// "relmap" build tag. It is deliberately naive: every operator is written
// as the obvious set manipulation, and the in-place forms are thin wrappers
// over the functional ones. Running the test suite (golden corpus files
// included) under this tag and under the default bitset engine is the
// differential proof that both compute identical relations.
type Relation struct {
	succ map[int]map[int]struct{}
}

// New returns an empty relation.
func New() *Relation {
	return &Relation{succ: make(map[int]map[int]struct{})}
}

// NewSized returns an empty relation; the size hint is ignored by the
// map engine.
func NewSized(n int) *Relation { return New() }

// Add inserts the edge (a, b). Adding an existing edge is a no-op.
// Elements must be non-negative.
func (r *Relation) Add(a, b int) {
	if a < 0 || b < 0 {
		panic("rel: negative element")
	}
	s, ok := r.succ[a]
	if !ok {
		s = make(map[int]struct{})
		r.succ[a] = s
	}
	s[b] = struct{}{}
}

// Has reports whether the edge (a, b) is present.
func (r *Relation) Has(a, b int) bool {
	s, ok := r.succ[a]
	if !ok {
		return false
	}
	_, ok = s[b]
	return ok
}

// Size returns the number of edges.
func (r *Relation) Size() int {
	n := 0
	for _, s := range r.succ {
		n += len(s)
	}
	return n
}

// IsEmpty reports whether the relation has no edges.
func (r *Relation) IsEmpty() bool { return r.Size() == 0 }

// AnyFrom reports whether a has at least one outgoing edge.
func (r *Relation) AnyFrom(a int) bool { return len(r.succ[a]) > 0 }

// Pairs returns all edges in deterministic ascending (From, To) order.
func (r *Relation) Pairs() []Pair {
	var out []Pair
	for a, s := range r.succ {
		for b := range s {
			out = append(out, Pair{a, b})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Clone returns a deep copy of r.
func (r *Relation) Clone() *Relation {
	c := New()
	for a, s := range r.succ {
		cs := make(map[int]struct{}, len(s))
		for b := range s {
			cs[b] = struct{}{}
		}
		c.succ[a] = cs
	}
	return c
}

// Reset removes every edge.
func (r *Relation) Reset() {
	r.succ = make(map[int]map[int]struct{})
}

// CopyFrom makes r an exact copy of o.
func (r *Relation) CopyFrom(o *Relation) {
	if r == o {
		return
	}
	r.succ = o.Clone().succ
}

// UnionWith adds every edge of o to r (r ∪= o).
func (r *Relation) UnionWith(o *Relation) {
	for a, s := range o.succ {
		for b := range s {
			r.Add(a, b)
		}
	}
}

// IntersectWith removes every edge of r not in o (r ∩= o).
func (r *Relation) IntersectWith(o *Relation) {
	r.succ = r.Intersect(o).succ
}

// MinusWith removes every edge of o from r (r \= o).
func (r *Relation) MinusWith(o *Relation) {
	r.succ = r.Minus(o).succ
}

// SeqOf sets r to the relational composition p ; q. r must not alias p or q.
func (r *Relation) SeqOf(p, q *Relation) {
	if r == p || r == q {
		panic("rel: SeqOf receiver aliases an operand")
	}
	r.succ = p.Seq(q).succ
}

// InverseOf sets r to o^-1. r must not alias o.
func (r *Relation) InverseOf(o *Relation) {
	if r == o {
		panic("rel: InverseOf receiver aliases the operand")
	}
	r.succ = o.Inverse().succ
}

// CloseTransitive replaces r with its transitive closure r+ in place.
func (r *Relation) CloseTransitive() {
	r.succ = r.TransitiveClosure().succ
}

// Union returns r ∪ others.
func (r *Relation) Union(others ...*Relation) *Relation {
	out := r.Clone()
	for _, o := range others {
		out.UnionWith(o)
	}
	return out
}

// Intersect returns r ∩ o.
func (r *Relation) Intersect(o *Relation) *Relation {
	out := New()
	for a, s := range r.succ {
		for b := range s {
			if o.Has(a, b) {
				out.Add(a, b)
			}
		}
	}
	return out
}

// Minus returns r \ o.
func (r *Relation) Minus(o *Relation) *Relation {
	out := New()
	for a, s := range r.succ {
		for b := range s {
			if !o.Has(a, b) {
				out.Add(a, b)
			}
		}
	}
	return out
}

// Seq returns the relational composition r ; o:
// (a, c) ∈ r;o iff ∃b. (a, b) ∈ r ∧ (b, c) ∈ o.
func (r *Relation) Seq(o *Relation) *Relation {
	out := New()
	for a, s := range r.succ {
		for b := range s {
			if t, ok := o.succ[b]; ok {
				for c := range t {
					out.Add(a, c)
				}
			}
		}
	}
	return out
}

// Inverse returns r^-1: (b, a) for every (a, b) in r.
func (r *Relation) Inverse() *Relation {
	out := New()
	for a, s := range r.succ {
		for b := range s {
			out.Add(b, a)
		}
	}
	return out
}

// Domain returns the set of elements with at least one outgoing edge,
// in sorted order.
func (r *Relation) Domain() []int {
	var out []int
	for a, s := range r.succ {
		if len(s) > 0 {
			out = append(out, a)
		}
	}
	sort.Ints(out)
	return out
}

// Codomain returns the set of elements with at least one incoming edge,
// in sorted order.
func (r *Relation) Codomain() []int {
	seen := make(map[int]struct{})
	for _, s := range r.succ {
		for b := range s {
			seen[b] = struct{}{}
		}
	}
	out := make([]int, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// TransitiveClosure returns r+, the least transitive relation containing r.
func (r *Relation) TransitiveClosure() *Relation {
	out := r.Clone()
	// Gather all vertices mentioned by the relation.
	verts := make(map[int]struct{})
	for a, s := range r.succ {
		verts[a] = struct{}{}
		for b := range s {
			verts[b] = struct{}{}
		}
	}
	// Floyd–Warshall style closure; fine for litmus-scale graphs.
	for k := range verts {
		for a := range verts {
			if !out.Has(a, k) {
				continue
			}
			if s, ok := out.succ[k]; ok {
				for b := range s {
					out.Add(a, b)
				}
			}
		}
	}
	return out
}

// Irreflexive reports whether no element is related to itself.
func (r *Relation) Irreflexive() bool {
	for a, s := range r.succ {
		if _, ok := s[a]; ok {
			return false
		}
	}
	return true
}

// Acyclic reports whether r+ is irreflexive, i.e. the directed graph induced
// by r has no cycle.
func (r *Relation) Acyclic() bool {
	// DFS-based cycle detection avoids building the full closure.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[int]int)
	var stack []int
	for a := range r.succ {
		if color[a] != white {
			continue
		}
		// Iterative DFS with an explicit "post" marker.
		stack = stack[:0]
		stack = append(stack, a)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			if color[n] == white {
				color[n] = grey
				for b := range r.succ[n] {
					switch color[b] {
					case grey:
						return false
					case white:
						stack = append(stack, b)
					}
				}
			} else {
				if color[n] == grey {
					color[n] = black
				}
				stack = stack[:len(stack)-1]
			}
		}
	}
	return true
}

// RestrictDomain returns r with edges limited to those whose source is in set.
func (r *Relation) RestrictDomain(set map[int]bool) *Relation {
	out := New()
	for a, s := range r.succ {
		if !set[a] {
			continue
		}
		for b := range s {
			out.Add(a, b)
		}
	}
	return out
}

// RestrictCodomain returns r with edges limited to those whose target is in set.
func (r *Relation) RestrictCodomain(set map[int]bool) *Relation {
	out := New()
	for a, s := range r.succ {
		for b := range s {
			if set[b] {
				out.Add(a, b)
			}
		}
	}
	return out
}

// Filter returns the edges of r satisfying keep.
func (r *Relation) Filter(keep func(a, b int) bool) *Relation {
	out := New()
	for a, s := range r.succ {
		for b := range s {
			if keep(a, b) {
				out.Add(a, b)
			}
		}
	}
	return out
}

// Equal reports whether r and o contain exactly the same edges.
func (r *Relation) Equal(o *Relation) bool {
	if r.Size() != o.Size() {
		return false
	}
	for a, s := range r.succ {
		for b := range s {
			if !o.Has(a, b) {
				return false
			}
		}
	}
	return true
}

// Arena matches the bitset engine's pooling API. The map engine has no
// fixed-capacity storage to recycle, so Get simply allocates.
type Arena struct{ n int }

// NewArena returns an arena whose relations hold elements [0, n).
func NewArena(n int) *Arena { return &Arena{n: n} }

// Universe returns the element capacity the arena was created with.
func (ar *Arena) Universe() int { return ar.n }

// Get returns an empty relation.
func (ar *Arena) Get() *Relation { return New() }

// Put discards the relation.
func (ar *Arena) Put(r *Relation) {}

// Acyclic reports whether r has no cycle.
func (ar *Arena) Acyclic(r *Relation) bool { return r.Acyclic() }
