package rel_test

import (
	"fmt"

	"repro/internal/rel"
)

// ExampleRelation_Acyclic builds the "cat" expression at the heart of
// every consistency axiom: the union of ordering relations is checked for
// cycles.
func ExampleRelation_Acyclic() {
	po := rel.FromPairs(rel.Pair{From: 1, To: 2}) // e1 →po e2
	rf := rel.FromPairs(rel.Pair{From: 2, To: 3}) // e2 →rf e3
	fr := rel.FromPairs(rel.Pair{From: 3, To: 1}) // e3 →fr e1
	ghb := rel.Union(po, rf, fr)
	fmt.Println("consistent:", ghb.Acyclic())
	// Output:
	// consistent: false
}

// ExampleSeq composes relations like cat's ';' operator.
func ExampleSeq() {
	r := rel.Identity([]int{1}).
		Seq(rel.FromPairs(rel.Pair{From: 1, To: 2}, rel.Pair{From: 3, To: 4}))
	fmt.Println(r)
	// Output:
	// {1->2}
}
