package rel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddHas(t *testing.T) {
	r := New()
	if r.Has(1, 2) {
		t.Fatal("empty relation has edge")
	}
	r.Add(1, 2)
	if !r.Has(1, 2) {
		t.Fatal("missing added edge")
	}
	if r.Has(2, 1) {
		t.Fatal("relation is not symmetric")
	}
	r.Add(1, 2) // duplicate
	if r.Size() != 1 {
		t.Fatalf("size = %d, want 1", r.Size())
	}
}

func TestUnionMinusIntersect(t *testing.T) {
	a := FromPairs(Pair{1, 2}, Pair{2, 3})
	b := FromPairs(Pair{2, 3}, Pair{3, 4})
	u := a.Union(b)
	if u.Size() != 3 || !u.Has(1, 2) || !u.Has(2, 3) || !u.Has(3, 4) {
		t.Fatalf("union wrong: %v", u)
	}
	m := a.Minus(b)
	if m.Size() != 1 || !m.Has(1, 2) {
		t.Fatalf("minus wrong: %v", m)
	}
	i := a.Intersect(b)
	if i.Size() != 1 || !i.Has(2, 3) {
		t.Fatalf("intersect wrong: %v", i)
	}
	// operands untouched
	if a.Size() != 2 || b.Size() != 2 {
		t.Fatal("operands mutated")
	}
}

func TestSeq(t *testing.T) {
	a := FromPairs(Pair{1, 2}, Pair{1, 3})
	b := FromPairs(Pair{2, 4}, Pair{3, 5})
	c := a.Seq(b)
	if c.Size() != 2 || !c.Has(1, 4) || !c.Has(1, 5) {
		t.Fatalf("seq wrong: %v", c)
	}
	if !Seq().IsEmpty() {
		t.Fatal("empty Seq not empty")
	}
	d := Seq(a, b, FromPairs(Pair{4, 9}))
	if d.Size() != 1 || !d.Has(1, 9) {
		t.Fatalf("3-way seq wrong: %v", d)
	}
}

func TestInverse(t *testing.T) {
	a := FromPairs(Pair{1, 2}, Pair{3, 4})
	inv := a.Inverse()
	if !inv.Has(2, 1) || !inv.Has(4, 3) || inv.Size() != 2 {
		t.Fatalf("inverse wrong: %v", inv)
	}
	if !inv.Inverse().Equal(a) {
		t.Fatal("double inverse is not identity")
	}
}

func TestIdentitySeq(t *testing.T) {
	// [A] ; r keeps only edges whose source is in A.
	r := FromPairs(Pair{1, 2}, Pair{3, 4})
	id := Identity([]int{1})
	got := id.Seq(r)
	if got.Size() != 1 || !got.Has(1, 2) {
		t.Fatalf("[A];r wrong: %v", got)
	}
	got = r.Seq(Identity([]int{4}))
	if got.Size() != 1 || !got.Has(3, 4) {
		t.Fatalf("r;[A] wrong: %v", got)
	}
}

func TestTransitiveClosure(t *testing.T) {
	r := FromPairs(Pair{1, 2}, Pair{2, 3}, Pair{3, 4})
	tc := r.TransitiveClosure()
	want := []Pair{{1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}}
	if tc.Size() != len(want) {
		t.Fatalf("closure size = %d, want %d: %v", tc.Size(), len(want), tc)
	}
	for _, p := range want {
		if !tc.Has(p.From, p.To) {
			t.Fatalf("closure missing %v", p)
		}
	}
}

func TestAcyclic(t *testing.T) {
	if !New().Acyclic() {
		t.Fatal("empty relation should be acyclic")
	}
	if !FromPairs(Pair{1, 2}, Pair{2, 3}).Acyclic() {
		t.Fatal("chain should be acyclic")
	}
	if FromPairs(Pair{1, 2}, Pair{2, 1}).Acyclic() {
		t.Fatal("2-cycle not detected")
	}
	if FromPairs(Pair{1, 1}).Acyclic() {
		t.Fatal("self-loop not detected")
	}
	if FromPairs(Pair{1, 2}, Pair{2, 3}, Pair{3, 1}).Acyclic() {
		t.Fatal("3-cycle not detected")
	}
	// Diamond is acyclic.
	if !FromPairs(Pair{1, 2}, Pair{1, 3}, Pair{2, 4}, Pair{3, 4}).Acyclic() {
		t.Fatal("diamond misreported as cyclic")
	}
}

func TestIrreflexive(t *testing.T) {
	if !FromPairs(Pair{1, 2}).Irreflexive() {
		t.Fatal("want irreflexive")
	}
	if FromPairs(Pair{1, 1}).Irreflexive() {
		t.Fatal("self-loop not caught")
	}
}

func TestDomainCodomain(t *testing.T) {
	r := FromPairs(Pair{3, 5}, Pair{1, 5}, Pair{1, 7})
	d := r.Domain()
	if len(d) != 2 || d[0] != 1 || d[1] != 3 {
		t.Fatalf("domain = %v", d)
	}
	c := r.Codomain()
	if len(c) != 2 || c[0] != 5 || c[1] != 7 {
		t.Fatalf("codomain = %v", c)
	}
}

func TestRestrictAndFilter(t *testing.T) {
	r := FromPairs(Pair{1, 2}, Pair{3, 4})
	rd := r.RestrictDomain(map[int]bool{1: true})
	if rd.Size() != 1 || !rd.Has(1, 2) {
		t.Fatalf("restrict domain: %v", rd)
	}
	rc := r.RestrictCodomain(map[int]bool{4: true})
	if rc.Size() != 1 || !rc.Has(3, 4) {
		t.Fatalf("restrict codomain: %v", rc)
	}
	f := r.Filter(func(a, b int) bool { return a == 3 })
	if f.Size() != 1 || !f.Has(3, 4) {
		t.Fatalf("filter: %v", f)
	}
}

func TestTotalOrders(t *testing.T) {
	var count int
	TotalOrders([]int{1, 2, 3}, func(r *Relation) bool {
		count++
		if r.Size() != 3 {
			t.Fatalf("total order over 3 elems should have 3 edges, got %d", r.Size())
		}
		if !r.Acyclic() {
			t.Fatal("total order should be acyclic")
		}
		return true
	})
	if count != 6 {
		t.Fatalf("3! = 6 orders expected, got %d", count)
	}
	// Early stop.
	count = 0
	TotalOrders([]int{1, 2, 3}, func(r *Relation) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop failed, count = %d", count)
	}
	// Empty set yields exactly one (empty) order.
	count = 0
	TotalOrders(nil, func(r *Relation) bool {
		count++
		if !r.IsEmpty() {
			t.Fatal("order over empty set must be empty")
		}
		return true
	})
	if count != 1 {
		t.Fatalf("empty set: %d orders", count)
	}
}

func TestString(t *testing.T) {
	s := FromPairs(Pair{2, 1}, Pair{1, 2}).String()
	if s != "{1->2, 2->1}" {
		t.Fatalf("String() = %q", s)
	}
}

// randomRelation builds a pseudo-random relation over [0, n) with ~density
// fraction of possible edges, for property tests.
func randomRelation(r *rand.Rand, n int, density float64) *Relation {
	out := New()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if r.Float64() < density {
				out.Add(a, b)
			}
		}
	}
	return out
}

func TestPropertyUnionCommutes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRelation(rng, 6, 0.3)
		b := randomRelation(rng, 6, 0.3)
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySeqAssociates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRelation(rng, 5, 0.3)
		b := randomRelation(rng, 5, 0.3)
		c := randomRelation(rng, 5, 0.3)
		return a.Seq(b).Seq(c).Equal(a.Seq(b.Seq(c)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyClosureIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRelation(rng, 6, 0.2)
		tc := a.TransitiveClosure()
		return tc.TransitiveClosure().Equal(tc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyClosureContains(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRelation(rng, 6, 0.2)
		tc := a.TransitiveClosure()
		return a.Minus(tc).IsEmpty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAcyclicMatchesClosureIrreflexive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRelation(rng, 6, 0.25)
		return a.Acyclic() == a.TransitiveClosure().Irreflexive()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDeMorganMinus(t *testing.T) {
	// a \ (b ∪ c) == (a \ b) ∩ (a \ c)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRelation(rng, 5, 0.4)
		b := randomRelation(rng, 5, 0.4)
		c := randomRelation(rng, 5, 0.4)
		left := a.Minus(b.Union(c))
		right := a.Minus(b).Intersect(a.Minus(c))
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
