package rel

import (
	"math/rand"
	"sort"
	"testing"
)

// pairSet is a test-local reference model: a relation as a flat set of
// edges, with every operator written as brute-force set arithmetic. The
// randomized differential below checks whichever engine is compiled in
// (bitset by default, nested maps under -tags relmap) against it.
type pairSet map[Pair]bool

func (s pairSet) rel() *Relation {
	r := New()
	for p := range s {
		r.Add(p.From, p.To)
	}
	return r
}

func (s pairSet) sorted() []Pair {
	out := make([]Pair, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

func (s pairSet) union(o pairSet) pairSet {
	out := pairSet{}
	for p := range s {
		out[p] = true
	}
	for p := range o {
		out[p] = true
	}
	return out
}

func (s pairSet) intersect(o pairSet) pairSet {
	out := pairSet{}
	for p := range s {
		if o[p] {
			out[p] = true
		}
	}
	return out
}

func (s pairSet) minus(o pairSet) pairSet {
	out := pairSet{}
	for p := range s {
		if !o[p] {
			out[p] = true
		}
	}
	return out
}

func (s pairSet) seq(o pairSet) pairSet {
	out := pairSet{}
	for p := range s {
		for q := range o {
			if p.To == q.From {
				out[Pair{p.From, q.To}] = true
			}
		}
	}
	return out
}

func (s pairSet) inverse() pairSet {
	out := pairSet{}
	for p := range s {
		out[Pair{p.To, p.From}] = true
	}
	return out
}

func (s pairSet) closure() pairSet {
	out := pairSet{}
	for p := range s {
		out[p] = true
	}
	for changed := true; changed; {
		changed = false
		for p := range out {
			for q := range out {
				if p.To == q.From && !out[Pair{p.From, q.To}] {
					out[Pair{p.From, q.To}] = true
					changed = true
				}
			}
		}
	}
	return out
}

func (s pairSet) acyclic() bool {
	for p := range s.closure() {
		if p.From == p.To {
			return false
		}
	}
	return true
}

func randPairSet(rng *rand.Rand, universe, edges int) pairSet {
	s := pairSet{}
	for i := 0; i < edges; i++ {
		s[Pair{rng.Intn(universe), rng.Intn(universe)}] = true
	}
	return s
}

func wantPairs(t *testing.T, op string, got *Relation, want pairSet) {
	t.Helper()
	gp := got.Pairs()
	wp := want.sorted()
	if len(gp) != len(wp) {
		t.Fatalf("%s: got %d edges %v, want %d edges %v", op, len(gp), gp, len(wp), wp)
	}
	for i := range gp {
		if gp[i] != wp[i] {
			t.Fatalf("%s: edge %d: got %v, want %v", op, i, gp[i], wp[i])
		}
	}
}

// TestDifferentialOps cross-checks every relation operator against the
// brute-force pairSet reference on randomized inputs of varying density,
// including the in-place kernel forms the hot paths use.
func TestDifferentialOps(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		universe := 1 + rng.Intn(70) // crosses the 64-bit word boundary
		sa := randPairSet(rng, universe, rng.Intn(2*universe))
		sb := randPairSet(rng, universe, rng.Intn(2*universe))
		ra, rb := sa.rel(), sb.rel()

		wantPairs(t, "Union", ra.Union(rb), sa.union(sb))
		wantPairs(t, "Intersect", ra.Intersect(rb), sa.intersect(sb))
		wantPairs(t, "Minus", ra.Minus(rb), sa.minus(sb))
		wantPairs(t, "Seq", ra.Seq(rb), sa.seq(sb))
		wantPairs(t, "Inverse", ra.Inverse(), sa.inverse())
		wantPairs(t, "TransitiveClosure", ra.TransitiveClosure(), sa.closure())

		if got, want := ra.Acyclic(), sa.acyclic(); got != want {
			t.Fatalf("Acyclic: got %v, want %v for %v", got, want, sa.sorted())
		}
		ar := NewArena(universe)
		if got, want := ar.Acyclic(ra), sa.acyclic(); got != want {
			t.Fatalf("Arena.Acyclic: got %v, want %v for %v", got, want, sa.sorted())
		}

		// In-place forms must agree with the functional ones.
		u := ra.Clone()
		u.UnionWith(rb)
		wantPairs(t, "UnionWith", u, sa.union(sb))
		in := ra.Clone()
		in.IntersectWith(rb)
		wantPairs(t, "IntersectWith", in, sa.intersect(sb))
		mi := ra.Clone()
		mi.MinusWith(rb)
		wantPairs(t, "MinusWith", mi, sa.minus(sb))
		sq := New()
		sq.SeqOf(ra, rb)
		wantPairs(t, "SeqOf", sq, sa.seq(sb))
		iv := New()
		iv.InverseOf(ra)
		wantPairs(t, "InverseOf", iv, sa.inverse())
		cl := ra.Clone()
		cl.CloseTransitive()
		wantPairs(t, "CloseTransitive", cl, sa.closure())
		cp := NewSized(universe)
		cp.CopyFrom(ra)
		wantPairs(t, "CopyFrom", cp, sa)
		cp.Reset()
		if !cp.IsEmpty() {
			t.Fatalf("Reset left edges: %v", cp.Pairs())
		}

		// Arena recycling must hand back fully cleared storage.
		got := ar.Get()
		if !got.IsEmpty() {
			t.Fatalf("Arena.Get returned non-empty relation: %v", got.Pairs())
		}
		got.UnionWith(ra)
		ar.Put(got)
		again := ar.Get()
		if !again.IsEmpty() {
			t.Fatalf("Arena.Get after Put returned stale edges: %v", again.Pairs())
		}
		ar.Put(again)

		// Point queries.
		for i := 0; i < 20; i++ {
			a, b := rng.Intn(universe), rng.Intn(universe)
			if got, want := ra.Has(a, b), sa[Pair{a, b}]; got != want {
				t.Fatalf("Has(%d,%d): got %v, want %v", a, b, got, want)
			}
		}
		if got, want := ra.Size(), len(sa); got != want {
			t.Fatalf("Size: got %d, want %d", got, want)
		}
	}
}

// TestMixedCapacity pins the kernels against operands whose allocated
// capacity exceeds their logical universe (growth doubling can leave a
// relation with more row words than a fresh peer over the same elements).
func TestMixedCapacity(t *testing.T) {
	// wide: capacity for 256 elements, but only [0,70) used.
	wide := New()
	wide.Add(200, 200) // force capacity past 192
	wide2 := New()
	wide2.Add(200, 200)
	sw := pairSet{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		p := Pair{rng.Intn(70), rng.Intn(70)}
		sw[p] = true
		wide.Add(p.From, p.To)
		wide2.Add(p.From, p.To)
	}
	// narrow: tight capacity over the same universe.
	narrow := NewSized(70)
	sn := pairSet{}
	for i := 0; i < 60; i++ {
		p := Pair{rng.Intn(70), rng.Intn(70)}
		sn[p] = true
		narrow.Add(p.From, p.To)
	}
	swOnly := pairSet{}
	for p := range sw {
		swOnly[p] = true
	}
	swOnly[Pair{200, 200}] = true

	u := narrow.Clone()
	u.UnionWith(wide)
	wantPairs(t, "UnionWith(wide into narrow)", u, sn.union(swOnly))
	sq := New()
	sq.SeqOf(narrow, wide)
	wantPairs(t, "SeqOf(narrow;wide)", sq, sn.seq(swOnly))
	cp := NewSized(70)
	cp.CopyFrom(wide)
	wantPairs(t, "CopyFrom(wide into narrow)", cp, swOnly)
	in := narrow.Clone()
	in.IntersectWith(wide)
	wantPairs(t, "IntersectWith(wide into narrow)", in, sn.intersect(swOnly))
	mi := narrow.Clone()
	mi.MinusWith(wide)
	wantPairs(t, "MinusWith(wide from narrow)", mi, sn.minus(swOnly))
	if !wide.Equal(wide2) {
		t.Fatal("Equal: identical wide relations reported unequal")
	}
	if wide.Equal(narrow) {
		t.Fatal("Equal: distinct relations reported equal")
	}
}

// TestPairsSorted is the regression test for the Pairs determinism
// guarantee: edges inserted in adversarial order must come back in
// ascending (From, To) order, as the doc comment promises.
func TestPairsSorted(t *testing.T) {
	r := New()
	ins := []Pair{{67, 3}, {0, 65}, {5, 5}, {0, 2}, {67, 0}, {5, 1}, {0, 64}}
	for _, p := range ins {
		r.Add(p.From, p.To)
	}
	want := []Pair{{0, 2}, {0, 64}, {0, 65}, {5, 1}, {5, 5}, {67, 0}, {67, 3}}
	got := r.Pairs()
	if len(got) != len(want) {
		t.Fatalf("Pairs: got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Pairs[%d]: got %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}

	// Must hold for randomized insertion orders too.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		s := randPairSet(rng, 1+rng.Intn(100), rng.Intn(200))
		wantPairs(t, "Pairs", s.rel(), s)
	}
}
