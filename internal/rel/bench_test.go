package rel

import (
	"math/rand"
	"testing"
)

// benchGraph builds a deterministic dense-ish relation over n events,
// shaped like the ordering graphs consistency checks walk: mostly forward
// edges (acyclic) so the Acyclic benchmarks measure full traversals.
func benchGraph(n int, seed int64, back bool) *Relation {
	rng := rand.New(rand.NewSource(seed))
	r := NewSized(n)
	for i := 0; i < 4*n; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if !back && a > b {
			a, b = b, a
		}
		if a != b {
			r.Add(a, b)
		}
	}
	return r
}

// BenchmarkRelOps measures the kernels the per-candidate consistency
// checks are built from, at litmus-scale universes (a corpus skeleton has
// roughly 8–24 events).
func BenchmarkRelOps(b *testing.B) {
	const n = 24
	p := benchGraph(n, 1, false)
	q := benchGraph(n, 2, false)
	cyc := benchGraph(n, 3, true)
	ar := NewArena(n)
	scratch := ar.Get()

	b.Run("UnionWith", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scratch.CopyFrom(p)
			scratch.UnionWith(q)
		}
	})
	b.Run("SeqOf", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scratch.SeqOf(p, q)
		}
	})
	b.Run("InverseOf", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scratch.InverseOf(p)
		}
	})
	b.Run("CloseTransitive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scratch.CopyFrom(p)
			scratch.CloseTransitive()
		}
	})
	b.Run("AcyclicTrue", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !ar.Acyclic(p) {
				b.Fatal("expected acyclic")
			}
		}
	})
	b.Run("AcyclicFalse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ar.Acyclic(cyc) {
				b.Fatal("expected cyclic")
			}
		}
	})
}
