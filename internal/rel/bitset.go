//go:build !relmap

package rel

import "math/bits"

// Relation is a finite binary relation over elements identified by small
// non-negative int IDs, stored as a dense adjacency-bit matrix: bit b of
// row a is set iff the edge (a, b) is present. Rows are w 64-bit words;
// capacity grows on demand, and u tracks the logical universe (one past
// the largest element ever mentioned) so kernels never scan dead rows.
//
// The zero value is not ready for use; call New or NewSized.
type Relation struct {
	n int      // row/column capacity; a multiple of 64, or 0
	w int      // words per row: n/64
	u int      // logical universe: every set bit lies in [0,u)×[0,u)
	b []uint64 // row-major bit matrix, len n*w
}

// New returns an empty relation that grows as elements are added.
func New() *Relation { return &Relation{} }

// NewSized returns an empty relation with capacity for elements [0, n),
// so Adds below n never reallocate.
func NewSized(n int) *Relation {
	r := &Relation{}
	r.grow(n)
	return r
}

// grow ensures capacity for elements [0, to). Existing edges are preserved.
func (r *Relation) grow(to int) {
	if to <= r.n {
		return
	}
	n := (to + 63) &^ 63
	if n < 2*r.n {
		n = 2 * r.n
	}
	w := n >> 6
	nb := make([]uint64, n*w)
	for a := 0; a < r.u; a++ {
		copy(nb[a*w:a*w+r.w], r.b[a*r.w:(a+1)*r.w])
	}
	r.n, r.w, r.b = n, w, nb
}

// reach extends the logical universe to cover element ids < u.
func (r *Relation) reach(u int) {
	if u > r.u {
		r.grow(u)
		r.u = u
	}
}

func (r *Relation) row(a int) []uint64 { return r.b[a*r.w : (a+1)*r.w] }

// uw returns the number of words that can hold set bits: ceil(u/64). Kernels
// iterate operand rows up to uw, never w, because two relations over the same
// universe may have different capacities (growth doubles), and words beyond
// uw are guaranteed zero.
func (r *Relation) uw() int { return (r.u + 63) >> 6 }

// Add inserts the edge (a, b). Adding an existing edge is a no-op.
// Elements must be non-negative.
func (r *Relation) Add(a, b int) {
	if a < 0 || b < 0 {
		panic("rel: negative element")
	}
	r.reach(max(a, b) + 1)
	r.b[a*r.w+b>>6] |= 1 << uint(b&63)
}

// Has reports whether the edge (a, b) is present.
func (r *Relation) Has(a, b int) bool {
	if a < 0 || b < 0 || a >= r.u || b >= r.u {
		return false
	}
	return r.b[a*r.w+b>>6]>>uint(b&63)&1 != 0
}

// Size returns the number of edges.
func (r *Relation) Size() int {
	n := 0
	for _, w := range r.b {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the relation has no edges.
func (r *Relation) IsEmpty() bool {
	for _, w := range r.b {
		if w != 0 {
			return false
		}
	}
	return true
}

// AnyFrom reports whether a has at least one outgoing edge.
func (r *Relation) AnyFrom(a int) bool {
	if a < 0 || a >= r.u {
		return false
	}
	for _, w := range r.row(a) {
		if w != 0 {
			return true
		}
	}
	return false
}

// eachFrom invokes fn for every successor of a, in ascending order, until
// fn returns false. Reports whether iteration ran to completion.
func (r *Relation) eachFrom(a int, fn func(b int) bool) bool {
	for k, wv := range r.row(a) {
		for wv != 0 {
			b := k<<6 + bits.TrailingZeros64(wv)
			wv &= wv - 1
			if !fn(b) {
				return false
			}
		}
	}
	return true
}

// Pairs returns all edges in deterministic ascending (From, To) order.
// The bit matrix is scanned row-major, so the order falls out of the
// representation rather than a sort.
func (r *Relation) Pairs() []Pair {
	var out []Pair
	for a := 0; a < r.u; a++ {
		r.eachFrom(a, func(b int) bool {
			out = append(out, Pair{a, b})
			return true
		})
	}
	return out
}

// Clone returns a deep copy of r.
func (r *Relation) Clone() *Relation {
	c := &Relation{n: r.n, w: r.w, u: r.u}
	c.b = make([]uint64, len(r.b))
	copy(c.b, r.b)
	return c
}

// Reset removes every edge, keeping the allocated capacity.
func (r *Relation) Reset() {
	clear(r.b)
	r.u = 0
}

// CopyFrom makes r an exact copy of o, reusing r's storage when possible.
func (r *Relation) CopyFrom(o *Relation) {
	if r == o {
		return
	}
	r.Reset()
	r.reach(o.u)
	for a := 0; a < o.u; a++ {
		copy(r.row(a), o.row(a)[:o.uw()])
	}
}

// UnionWith adds every edge of o to r (r ∪= o).
func (r *Relation) UnionWith(o *Relation) {
	r.reach(o.u)
	for a := 0; a < o.u; a++ {
		dst := r.row(a)
		for k, wv := range o.row(a)[:o.uw()] {
			dst[k] |= wv
		}
	}
}

// IntersectWith removes every edge of r not in o (r ∩= o).
func (r *Relation) IntersectWith(o *Relation) {
	for a := 0; a < r.u; a++ {
		dst := r.row(a)
		if a >= o.u {
			clear(dst)
			continue
		}
		src := o.row(a)
		for k := range dst {
			if k < o.uw() {
				dst[k] &= src[k]
			} else {
				dst[k] = 0
			}
		}
	}
}

// MinusWith removes every edge of o from r (r \= o).
func (r *Relation) MinusWith(o *Relation) {
	u := min(r.u, o.u)
	kw := min(r.uw(), o.uw())
	for a := 0; a < u; a++ {
		dst := r.row(a)
		src := o.row(a)
		for k := 0; k < kw; k++ {
			dst[k] &^= src[k]
		}
	}
}

// SeqOf sets r to the relational composition p ; q. r must not alias p or q.
func (r *Relation) SeqOf(p, q *Relation) {
	if r == p || r == q {
		panic("rel: SeqOf receiver aliases an operand")
	}
	r.Reset()
	r.reach(max(p.u, q.u))
	for a := 0; a < p.u; a++ {
		dst := r.row(a)
		for k, wv := range p.row(a)[:p.uw()] {
			for wv != 0 {
				mid := k<<6 + bits.TrailingZeros64(wv)
				wv &= wv - 1
				if mid >= q.u {
					continue
				}
				for j, sv := range q.row(mid)[:q.uw()] {
					dst[j] |= sv
				}
			}
		}
	}
}

// InverseOf sets r to o^-1. r must not alias o.
func (r *Relation) InverseOf(o *Relation) {
	if r == o {
		panic("rel: InverseOf receiver aliases the operand")
	}
	r.Reset()
	r.reach(o.u)
	for a := 0; a < o.u; a++ {
		o.eachFrom(a, func(b int) bool {
			r.b[b*r.w+a>>6] |= 1 << uint(a&63)
			return true
		})
	}
}

// CloseTransitive replaces r with its transitive closure r+ in place,
// via the word-parallel Floyd–Warshall recurrence: whenever a reaches k,
// a also reaches everything k reaches.
func (r *Relation) CloseTransitive() {
	w := r.w
	for k := 0; k < r.u; k++ {
		krow := r.row(k)
		empty := true
		for _, wv := range krow {
			if wv != 0 {
				empty = false
				break
			}
		}
		if empty {
			continue
		}
		kw, kb := k>>6, uint(k&63)
		for a := 0; a < r.u; a++ {
			if r.b[a*w+kw]>>kb&1 == 0 {
				continue
			}
			dst := r.row(a)
			for j, wv := range krow {
				dst[j] |= wv
			}
		}
	}
}

// Union returns r ∪ others.
func (r *Relation) Union(others ...*Relation) *Relation {
	out := r.Clone()
	for _, o := range others {
		out.UnionWith(o)
	}
	return out
}

// Intersect returns r ∩ o.
func (r *Relation) Intersect(o *Relation) *Relation {
	out := r.Clone()
	out.IntersectWith(o)
	return out
}

// Minus returns r \ o.
func (r *Relation) Minus(o *Relation) *Relation {
	out := r.Clone()
	out.MinusWith(o)
	return out
}

// Seq returns the relational composition r ; o:
// (a, c) ∈ r;o iff ∃b. (a, b) ∈ r ∧ (b, c) ∈ o.
func (r *Relation) Seq(o *Relation) *Relation {
	out := New()
	out.SeqOf(r, o)
	return out
}

// Inverse returns r^-1: (b, a) for every (a, b) in r.
func (r *Relation) Inverse() *Relation {
	out := New()
	out.InverseOf(r)
	return out
}

// Domain returns the set of elements with at least one outgoing edge,
// in sorted order.
func (r *Relation) Domain() []int {
	var out []int
	for a := 0; a < r.u; a++ {
		if r.AnyFrom(a) {
			out = append(out, a)
		}
	}
	return out
}

// Codomain returns the set of elements with at least one incoming edge,
// in sorted order.
func (r *Relation) Codomain() []int {
	var out []int
	for b := 0; b < r.u; b++ {
		kw, kb := b>>6, uint(b&63)
		for a := 0; a < r.u; a++ {
			if r.b[a*r.w+kw]>>kb&1 != 0 {
				out = append(out, b)
				break
			}
		}
	}
	return out
}

// TransitiveClosure returns r+, the least transitive relation containing r.
func (r *Relation) TransitiveClosure() *Relation {
	out := r.Clone()
	out.CloseTransitive()
	return out
}

// Irreflexive reports whether no element is related to itself.
func (r *Relation) Irreflexive() bool {
	for a := 0; a < r.u; a++ {
		if r.b[a*r.w+a>>6]>>uint(a&63)&1 != 0 {
			return false
		}
	}
	return true
}

// Acyclic reports whether r+ is irreflexive, i.e. the directed graph induced
// by r has no cycle.
func (r *Relation) Acyclic() bool {
	var a Arena
	return a.Acyclic(r)
}

// RestrictDomain returns r with edges limited to those whose source is in set.
func (r *Relation) RestrictDomain(set map[int]bool) *Relation {
	out := New()
	for a := 0; a < r.u; a++ {
		if !set[a] {
			continue
		}
		r.eachFrom(a, func(b int) bool {
			out.Add(a, b)
			return true
		})
	}
	return out
}

// RestrictCodomain returns r with edges limited to those whose target is in set.
func (r *Relation) RestrictCodomain(set map[int]bool) *Relation {
	out := New()
	for a := 0; a < r.u; a++ {
		r.eachFrom(a, func(b int) bool {
			if set[b] {
				out.Add(a, b)
			}
			return true
		})
	}
	return out
}

// Filter returns the edges of r satisfying keep.
func (r *Relation) Filter(keep func(a, b int) bool) *Relation {
	out := New()
	for a := 0; a < r.u; a++ {
		r.eachFrom(a, func(b int) bool {
			if keep(a, b) {
				out.Add(a, b)
			}
			return true
		})
	}
	return out
}

// Equal reports whether r and o contain exactly the same edges.
func (r *Relation) Equal(o *Relation) bool {
	u := max(r.u, o.u)
	kw := max(r.uw(), o.uw())
	for a := 0; a < u; a++ {
		for k := 0; k < kw; k++ {
			var rv, ov uint64
			if a < r.u && k < r.uw() {
				rv = r.b[a*r.w+k]
			}
			if a < o.u && k < o.uw() {
				ov = o.b[a*o.w+k]
			}
			if rv != ov {
				return false
			}
		}
	}
	return true
}

// Arena pools fixed-capacity relations and DFS scratch so that per-candidate
// consistency checks allocate nothing after warm-up. Get returns an empty
// relation sized for the arena's universe; Put recycles it. An Arena (and
// every relation obtained from it) is not safe for concurrent use.
type Arena struct {
	n     int
	free  []*Relation
	color []uint8
	stack []int32
}

// NewArena returns an arena whose relations hold elements [0, n).
func NewArena(n int) *Arena {
	return &Arena{n: n}
}

// Universe returns the element capacity the arena was created with, so
// arenas themselves can be pooled by size.
func (ar *Arena) Universe() int { return ar.n }

// Get returns an empty relation with capacity for the arena's universe.
func (ar *Arena) Get() *Relation {
	if k := len(ar.free); k > 0 {
		r := ar.free[k-1]
		ar.free = ar.free[:k-1]
		r.Reset()
		return r
	}
	return NewSized(ar.n)
}

// Put returns a relation obtained from Get to the pool.
func (ar *Arena) Put(r *Relation) {
	ar.free = append(ar.free, r)
}

// Acyclic reports whether r has no cycle, using the arena's reusable DFS
// scratch (colors and an explicit stack) so the check allocates nothing
// once the scratch has grown to the relation's universe.
func (ar *Arena) Acyclic(r *Relation) bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	u := r.u
	if len(ar.color) < u {
		ar.color = make([]uint8, ((u+63)&^63)+64)
	}
	color := ar.color[:u]
	clear(color)
	stack := ar.stack[:0]
	defer func() { ar.stack = stack[:0] }()

	for a := 0; a < u; a++ {
		if color[a] != white || !r.AnyFrom(a) {
			continue
		}
		stack = append(stack, int32(a))
		for len(stack) > 0 {
			n := int(stack[len(stack)-1])
			if color[n] == white {
				color[n] = grey
				if !r.eachFrom(n, func(b int) bool {
					switch color[b] {
					case grey:
						return false
					case white:
						stack = append(stack, int32(b))
					}
					return true
				}) {
					return false
				}
			} else {
				if color[n] == grey {
					color[n] = black
				}
				stack = stack[:len(stack)-1]
			}
		}
	}
	return true
}
