// Package backend lowers TCG IR blocks to host (Arm) code, implementing
// the IR→Arm half of the verified mapping (Figure 7b): plain ld/st become
// plain LDR/STR, the read-fences become DMB ISHLD, Fww becomes DMB ISHST,
// every write-read-ordering fence becomes DMB ISH, and IR atomics become
// either casal (RMW1^AL) or DMBFF-bracketed exclusive loops (RMW2) — the
// two lowerings proven correct in §5.4 — or a QEMU-style helper call.
//
// Register convention for generated code:
//
//	X0–X17  IR globals (guest GPRs + CC slots), live across blocks
//	X18     block-exit PC / helper argument 0 / helper result
//	X19–X26 IR locals
//	X27     reserved (native-code stack pointer; unused by translated code)
//	X28     helper argument 1 / exclusive-loop status scratch
//	X29     scratch (immediates, casal expected-value)
//	X30     link register
//
// Generated blocks end with SVC #SvcTBExit (next guest PC in X18); helper
// calls are BLR to HelperBase+index, intercepted by the runtime.
package backend

import (
	"fmt"

	"repro/internal/isa/arm"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/tcg"
)

// SVC immediates used by generated code (disjoint from guest syscalls,
// which go through the helper mechanism).
const (
	// SvcTBExit ends a translation block; X18 holds the next guest PC.
	SvcTBExit = 0xF000
	// SvcHalt ends the block and halts the vCPU.
	SvcHalt = 0xF001
	// SvcInterp is the whole body of an interpreter-tier stub block: the
	// runtime intercepts it and executes the block's IR through the TCG
	// interpreter (the bottom rung of the self-healing tier ladder).
	SvcInterp = 0xF002
	// SvcMiscompile is the marker the miscompile fault injector writes
	// over a block's first instruction — a deliberately corrupted
	// translation that traps the moment it is executed.
	SvcMiscompile = 0xF003
)

// HelperBase is the fake address region for helper calls: helper i is
// invoked as BLR to HelperBase + 16*i. The region lies far outside
// simulated memory so a missed interception faults loudly.
const HelperBase uint64 = 1 << 40

// HelperAddr returns the dispatch address of a helper; the access size of
// memory helpers (1/2/4/8) rides in the low offset bits.
func HelperAddr(h tcg.Helper, size uint8) uint64 {
	return HelperBase + 16*uint64(h) + uint64(size)
}

// HelperOf inverts HelperAddr, recovering the helper index and size.
func HelperOf(addr uint64) (h tcg.Helper, size uint8, ok bool) {
	if addr < HelperBase {
		return 0, 0, false
	}
	off := addr - HelperBase
	return tcg.Helper(off / 16), uint8(off % 16), true
}

// CASLowering selects the IR-atomic lowering.
type CASLowering int

const (
	// CASCasal lowers OpCAS to casal (RMW1^AL).
	CASCasal CASLowering = iota
	// CASExclusiveFenced lowers OpCAS to DMBFF; LDXR/STXR loop; DMBFF
	// (the verified RMW2 option of Figure 7b).
	CASExclusiveFenced
)

// Config parameterizes code generation.
type Config struct {
	// CAS selects the atomic lowering (ignored for helper-call RMWs,
	// which the frontend emits as OpCall).
	CAS CASLowering
	// Obs, when non-nil, counts emitted blocks, host instructions and a
	// code-size histogram under its "backend" child scope.
	Obs *obs.Scope
}

// Stats counts what was emitted, for the evaluation's fence accounting.
type Stats struct {
	Insts    int
	DMBFull  int
	DMBLoad  int
	DMBStore int
	Casal    int
	ExclLoop int
	Helper   int
	// ChainSlots lists the block's patchable exits for TB chaining: byte
	// offsets (within the generated code) of SVC #SvcTBExit instructions
	// whose guest target is a compile-time constant, with that target.
	ChainSlots []ChainSlot
}

// ChainSlot is one constant-target block exit eligible for chaining.
type ChainSlot struct {
	// Off is the byte offset of the exit's SVC within the block's code.
	Off int
	// GuestTarget is the constant next guest PC.
	GuestTarget uint64
}

// Registers used by the convention.
const (
	regExit    = arm.X18
	regArg1    = arm.X28
	regScratch = arm.X29
	firstLocal = arm.X19
	lastLocal  = arm.X26
)

// hostReg maps an IR temp to its host register.
func hostReg(t tcg.Temp) (arm.Reg, error) {
	if t < tcg.NumGlobals {
		return arm.Reg(t), nil
	}
	r := arm.Reg(int(firstLocal) + int(t-tcg.NumGlobals))
	if r > lastLocal {
		return 0, fmt.Errorf("backend: out of local registers (temp t%d)", t)
	}
	return r, nil
}

type gen struct {
	cfg    Config
	insts  []arm.Inst
	fixups []fixup // intra-block label references
	labels map[int]int
	stats  Stats
	// nextInternalLabel allocates labels for lowering-internal loops,
	// numbered downward from -1 to avoid clashing with IR labels.
	nextInternalLabel int
}

type fixup struct {
	instIdx int
	label   int
}

func (g *gen) emit(i arm.Inst) { g.insts = append(g.insts, i) }

func (g *gen) emitBranchTo(i arm.Inst, label int) {
	g.fixups = append(g.fixups, fixup{len(g.insts), label})
	g.emit(i)
}

func (g *gen) setLabel(l int) { g.labels[l] = len(g.insts) }

func (g *gen) internalLabel() int {
	g.nextInternalLabel--
	return g.nextInternalLabel
}

// movImm loads an arbitrary 64-bit constant into rd.
func (g *gen) movImm(rd arm.Reg, v uint64) {
	g.emit(arm.Inst{Op: arm.MOVZ, Rd: rd, Imm: int64(v & 0xFFFF)})
	for s := uint8(1); s <= 3; s++ {
		if chunk := v >> (16 * s) & 0xFFFF; chunk != 0 {
			g.emit(arm.Inst{Op: arm.MOVK, Rd: rd, Imm: int64(chunk), Shift: s})
		}
	}
}

func (g *gen) mov(rd, rn arm.Reg) {
	if rd != rn {
		g.emit(arm.Inst{Op: arm.ORR, Rd: rd, Rn: arm.XZR, Rm: rn})
	}
}

var aluMap = map[tcg.Opcode]arm.Op{
	tcg.OpAdd: arm.ADD, tcg.OpSub: arm.SUB, tcg.OpMul: arm.MUL,
	tcg.OpUDiv: arm.UDIV, tcg.OpURem: arm.UREM,
	tcg.OpAnd: arm.AND, tcg.OpOr: arm.ORR, tcg.OpXor: arm.EOR,
	tcg.OpShl: arm.LSL, tcg.OpShr: arm.LSR, tcg.OpSar: arm.ASR,
}

var condMap = map[tcg.Cond]arm.Cond{
	tcg.CondEQ: arm.EQ, tcg.CondNE: arm.NE,
	tcg.CondLT: arm.LT, tcg.CondLE: arm.LE,
	tcg.CondGT: arm.GT, tcg.CondGE: arm.GE,
	tcg.CondLTU: arm.LO, tcg.CondLEU: arm.LS,
	tcg.CondGTU: arm.HI, tcg.CondGEU: arm.HS,
}

// lowerFence maps an IR fence to its Arm barrier per Figure 7b. The
// returned bool is false when no instruction is emitted (Facq/Frel).
func lowerFence(f memmodel.Fence) (arm.Barrier, bool) {
	switch f {
	case memmodel.FenceFrr, memmodel.FenceFrw, memmodel.FenceFrm:
		return arm.BarrierLoad, true
	case memmodel.FenceFww:
		return arm.BarrierStore, true
	case memmodel.FenceFacq, memmodel.FenceFrel:
		return 0, false
	default:
		// Fwr, Fwm, Fmr, Fmw, Fmm, Fsc (and x86's MFENCE should it leak
		// through) all need the full barrier.
		return arm.BarrierFull, true
	}
}

// Generate lowers a block to encoded host code placed at base.
func Generate(b *tcg.Block, base uint64, cfg Config) ([]byte, Stats, error) {
	g := &gen{cfg: cfg, labels: make(map[int]int)}
	for _, in := range b.Insts {
		if err := g.lower(in); err != nil {
			return nil, Stats{}, err
		}
	}
	// Blocks that fall off the end exit to GuestEnd (the frontend always
	// terminates blocks, but be defensive).
	if n := len(b.Insts); n == 0 || !isTerminal(b.Insts[n-1].Op) {
		g.movImm(regExit, b.GuestEnd)
		g.emit(arm.Inst{Op: arm.SVC, Imm: SvcTBExit})
	}

	// Resolve intra-block labels.
	for _, f := range g.fixups {
		pos, ok := g.labels[f.label]
		if !ok {
			return nil, Stats{}, fmt.Errorf("backend: unresolved label L%d", f.label)
		}
		g.insts[f.instIdx].Off = int32(pos - f.instIdx)
	}

	var code []byte
	for i, inst := range g.insts {
		var err error
		code, err = arm.EncodeTo(code, inst)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("backend: inst %d (%v): %w", i, inst, err)
		}
	}
	g.stats.Insts = len(g.insts)
	_ = base // blocks are position-independent: all branches are relative
	if sc := cfg.Obs.Child("backend"); sc != nil {
		sc.Counter("blocks").Inc()
		sc.Counter("insts").Add(uint64(len(g.insts)))
		sc.Histogram("code_bytes", obs.SizeBuckets).Observe(uint64(len(code)))
	}
	return code, g.stats, nil
}

func isTerminal(op tcg.Opcode) bool {
	return op == tcg.OpExit || op == tcg.OpExitInd || op == tcg.OpExitHalt || op == tcg.OpBr
}

func (g *gen) lower(in tcg.Inst) error {
	switch in.Op {
	case tcg.OpNop:
		return nil
	case tcg.OpSetLabel:
		g.setLabel(in.Label)
		return nil
	}

	rd, err := hostReg(in.Dst)
	if err != nil && in.HasDst() {
		return err
	}
	ra, errA := hostReg(in.A)
	rb, errB := hostReg(in.B)

	switch in.Op {
	case tcg.OpMovI:
		g.movImm(rd, uint64(in.Imm))
	case tcg.OpMov:
		if errA != nil {
			return errA
		}
		g.mov(rd, ra)
	case tcg.OpAdd, tcg.OpSub, tcg.OpMul, tcg.OpUDiv, tcg.OpURem,
		tcg.OpAnd, tcg.OpOr, tcg.OpXor, tcg.OpShl, tcg.OpShr, tcg.OpSar:
		if errA != nil {
			return errA
		}
		if errB != nil {
			return errB
		}
		g.emit(arm.Inst{Op: aluMap[in.Op], Rd: rd, Rn: ra, Rm: rb})
	case tcg.OpNeg:
		if errA != nil {
			return errA
		}
		g.emit(arm.Inst{Op: arm.NEG, Rd: rd, Rn: ra})
	case tcg.OpNot:
		if errA != nil {
			return errA
		}
		g.emit(arm.Inst{Op: arm.MVN, Rd: rd, Rn: ra})
	case tcg.OpSetcond:
		if errA != nil {
			return errA
		}
		if errB != nil {
			return errB
		}
		g.emit(arm.Inst{Op: arm.SUBS, Rd: arm.XZR, Rn: ra, Rm: rb})
		g.emit(arm.Inst{Op: arm.CSET, Rd: rd, Cond: condMap[in.Cond]})

	case tcg.OpLd:
		if errA != nil {
			return errA
		}
		base, off, err := g.memOperand(ra, in.Imm)
		if err != nil {
			return err
		}
		g.emit(arm.Inst{Op: arm.LDR, Rd: rd, Rn: base, Imm: off, Size: in.Size})
	case tcg.OpSt:
		if errA != nil {
			return errA
		}
		if errB != nil {
			return errB
		}
		base, off, err := g.memOperand(ra, in.Imm)
		if err != nil {
			return err
		}
		g.emit(arm.Inst{Op: arm.STR, Rd: rb, Rn: base, Imm: off, Size: in.Size})

	case tcg.OpMb:
		if bar, emit := lowerFence(in.Fence); emit {
			g.emit(arm.Inst{Op: arm.DMB, Barrier: bar})
			switch bar {
			case arm.BarrierFull:
				g.stats.DMBFull++
			case arm.BarrierLoad:
				g.stats.DMBLoad++
			case arm.BarrierStore:
				g.stats.DMBStore++
			}
		}

	case tcg.OpCAS:
		if errA != nil {
			return errA
		}
		if errB != nil {
			return errB
		}
		rc, errC := hostReg(in.C)
		if errC != nil {
			return errC
		}
		if g.cfg.CAS == CASCasal {
			// casal clobbers the expected-value register with the old
			// value; stage it through the scratch.
			g.mov(regScratch, rb)
			g.emit(arm.Inst{Op: arm.CASAL, Rd: regScratch, Rm: rc, Rn: ra, Size: in.Size})
			g.mov(rd, regScratch)
			g.stats.Casal++
		} else {
			// DMBFF; retry: LDXR; compare; STXR; DMBFF (Figure 7b).
			retry, done := g.internalLabel(), g.internalLabel()
			g.emit(arm.Inst{Op: arm.DMB, Barrier: arm.BarrierFull})
			g.stats.DMBFull++
			g.setLabel(retry)
			g.emit(arm.Inst{Op: arm.LDXR, Rd: regScratch, Rn: ra, Size: in.Size})
			g.emit(arm.Inst{Op: arm.SUBS, Rd: arm.XZR, Rn: regScratch, Rm: rb})
			g.emitBranchTo(arm.Inst{Op: arm.BCOND, Cond: arm.NE}, done)
			g.emit(arm.Inst{Op: arm.STXR, Rd: regArg1, Rm: rc, Rn: ra, Size: in.Size})
			g.emitBranchTo(arm.Inst{Op: arm.CBNZ, Rd: regArg1}, retry)
			g.setLabel(done)
			g.emit(arm.Inst{Op: arm.DMB, Barrier: arm.BarrierFull})
			g.stats.DMBFull++
			g.mov(rd, regScratch)
			g.stats.ExclLoop++
		}

	case tcg.OpXAdd:
		if errA != nil {
			return errA
		}
		if errB != nil {
			return errB
		}
		g.mov(regScratch, rb)
		g.emit(arm.Inst{Op: arm.LDADDAL, Rd: regScratch, Rm: rd, Rn: ra, Size: in.Size})
		g.stats.Casal++
	case tcg.OpXchg:
		if errA != nil {
			return errA
		}
		if errB != nil {
			return errB
		}
		g.mov(regScratch, rb)
		g.emit(arm.Inst{Op: arm.SWPAL, Rd: regScratch, Rm: rd, Rn: ra, Size: in.Size})
		g.stats.Casal++

	case tcg.OpBr:
		g.emitBranchTo(arm.Inst{Op: arm.B}, in.Label)
	case tcg.OpBrcond:
		if errA != nil {
			return errA
		}
		if errB != nil {
			return errB
		}
		g.emit(arm.Inst{Op: arm.SUBS, Rd: arm.XZR, Rn: ra, Rm: rb})
		g.emitBranchTo(arm.Inst{Op: arm.BCOND, Cond: condMap[in.Cond]}, in.Label)

	case tcg.OpCall:
		// Arguments: X18 ← A, X28 ← B; target in scratch; result in X18.
		// Convention: a helper result is written only when Dst is a local
		// temp — helpers with a global (or defaulted) Dst, like the guest
		// syscall helper, update guest state themselves.
		if errA != nil {
			return errA
		}
		if errB != nil {
			return errB
		}
		g.mov(regExit, ra)
		g.mov(regArg1, rb)
		g.movImm(regScratch, HelperAddr(in.Helper, in.Size))
		g.emit(arm.Inst{Op: arm.BLR, Rn: regScratch})
		if in.Dst >= tcg.NumGlobals {
			g.mov(rd, regExit)
		}
		g.stats.Helper++

	case tcg.OpExit:
		g.movImm(regExit, uint64(in.Imm))
		g.stats.ChainSlots = append(g.stats.ChainSlots, ChainSlot{
			Off:         len(g.insts) * arm.InstBytes,
			GuestTarget: uint64(in.Imm),
		})
		g.emit(arm.Inst{Op: arm.SVC, Imm: SvcTBExit})
	case tcg.OpExitInd:
		if errA != nil {
			return errA
		}
		g.mov(regExit, ra)
		g.emit(arm.Inst{Op: arm.SVC, Imm: SvcTBExit})
	case tcg.OpExitHalt:
		g.emit(arm.Inst{Op: arm.SVC, Imm: SvcHalt})

	default:
		return fmt.Errorf("backend: unimplemented IR op %v", in.Op)
	}
	return nil
}

// memOperand folds an offset into the addressing mode, computing
// out-of-range offsets into the scratch register.
func (g *gen) memOperand(base arm.Reg, off int64) (arm.Reg, int64, error) {
	if off >= 0 && off <= 0xFFF {
		return base, off, nil
	}
	g.movImm(regScratch, uint64(off))
	g.emit(arm.Inst{Op: arm.ADD, Rd: regScratch, Rn: base, Rm: regScratch})
	return regScratch, 0, nil
}
