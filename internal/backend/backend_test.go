package backend

import (
	"math/rand"
	"testing"

	"repro/internal/machine"
	"repro/internal/memmodel"
	"repro/internal/tcg"
)

// execute generates code for blk, loads it at 0x100000 in a fresh machine,
// seeds the global host registers, runs to the TB-exit trap, and returns
// the machine and next guest PC.
func execute(t *testing.T, blk *tcg.Block, globals []uint64, seedMem func([]byte)) (*machine.Machine, uint64, Stats) {
	t.Helper()
	code, st, err := Generate(blk, 0x100000, Config{CAS: CASCasal})
	if err != nil {
		t.Fatalf("generate: %v\n%s", err, blk)
	}
	m := machine.New(1 << 21)
	if seedMem != nil {
		seedMem(m.Mem)
	}
	copy(m.Mem[0x100000:], code)

	var nextPC uint64
	done := false
	m.Syscall = func(mm *machine.Machine, c *machine.CPU, imm uint16) error {
		switch imm {
		case SvcTBExit:
			nextPC = c.Regs[18]
			c.Halted = true
		case SvcHalt:
			c.Halted = true
		}
		done = true
		return nil
	}
	c := m.CPUs[0]
	c.PC = 0x100000
	for i := 0; i < tcg.NumGlobals && i < len(globals); i++ {
		c.Regs[i] = globals[i]
	}
	if err := m.Run(c, 1_000_000); err != nil {
		t.Fatalf("run: %v\n%s", err, blk)
	}
	if !done {
		t.Fatalf("block never exited\n%s", blk)
	}
	return m, nextPC, st
}

func TestSimpleBlockExecution(t *testing.T) {
	blk := tcg.NewBlock()
	a, b, c := blk.Temp(), blk.Temp(), blk.Temp()
	blk.MovI(a, 6)
	blk.MovI(b, 7)
	blk.Alu(tcg.OpMul, c, a, b)
	blk.Mov(0, c) // global 0
	blk.Exit(0xCAFE)

	m, next, _ := execute(t, blk, nil, nil)
	if m.CPUs[0].Regs[0] != 42 {
		t.Fatalf("global0 = %d", m.CPUs[0].Regs[0])
	}
	if next != 0xCAFE {
		t.Fatalf("next pc = %#x", next)
	}
}

func TestMemoryOps(t *testing.T) {
	blk := tcg.NewBlock()
	addr, v, out := blk.Temp(), blk.Temp(), blk.Temp()
	blk.MovI(addr, 0x8000)
	blk.MovI(v, 0xDEAD)
	blk.St(addr, 8, v, 8)
	blk.Ld(out, addr, 8, 8)
	blk.Mov(1, out)
	blk.Ld(out, addr, 8, 1) // byte load: 0xAD
	blk.Mov(2, out)
	blk.Exit(0)

	m, _, _ := execute(t, blk, nil, nil)
	if m.CPUs[0].Regs[1] != 0xDEAD || m.CPUs[0].Regs[2] != 0xAD {
		t.Fatalf("loads: %#x %#x", m.CPUs[0].Regs[1], m.CPUs[0].Regs[2])
	}
}

func TestLargeOffsetGoesThroughScratch(t *testing.T) {
	blk := tcg.NewBlock()
	addr, v, out := blk.Temp(), blk.Temp(), blk.Temp()
	blk.MovI(addr, 0x8000)
	blk.MovI(v, 77)
	blk.St(addr, 0x10000, v, 8) // offset > imm12
	blk.Ld(out, addr, 0x10000, 8)
	blk.Mov(0, out)
	blk.Exit(0)
	m, _, _ := execute(t, blk, nil, nil)
	if m.CPUs[0].Regs[0] != 77 {
		t.Fatalf("large-offset store/load: %d", m.CPUs[0].Regs[0])
	}
}

func TestFenceLowering(t *testing.T) {
	blk := tcg.NewBlock()
	for _, f := range []memmodel.Fence{
		memmodel.FenceFrr, memmodel.FenceFrw, memmodel.FenceFrm, // → DMBLD
		memmodel.FenceFww,                                       // → DMBST
		memmodel.FenceFwr, memmodel.FenceFmm, memmodel.FenceFsc, // → DMBFF
		memmodel.FenceFacq, memmodel.FenceFrel, // → nothing
	} {
		blk.Mb(f)
	}
	blk.Exit(0)
	_, _, st := execute(t, blk, nil, nil)
	if st.DMBLoad != 3 || st.DMBStore != 1 || st.DMBFull != 3 {
		t.Fatalf("fence lowering stats: %+v", st)
	}
}

func TestCASLowerings(t *testing.T) {
	for _, cfg := range []Config{{CAS: CASCasal}, {CAS: CASExclusiveFenced}} {
		blk := tcg.NewBlock()
		addr, exp, nv, old := blk.Temp(), blk.Temp(), blk.Temp(), blk.Temp()
		blk.MovI(addr, 0x8000)
		blk.MovI(exp, 0)
		blk.MovI(nv, 9)
		blk.Emit(tcg.Inst{Op: tcg.OpCAS, Dst: old, A: addr, B: exp, C: nv, Size: 8})
		blk.Mov(0, old)
		// Failed CAS second time.
		blk.Emit(tcg.Inst{Op: tcg.OpCAS, Dst: old, A: addr, B: exp, C: nv, Size: 8})
		blk.Mov(1, old)
		blk.Exit(0)

		code, st, err := Generate(blk, 0x100000, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := machine.New(1 << 21)
		copy(m.Mem[0x100000:], code)
		m.Syscall = func(mm *machine.Machine, c *machine.CPU, imm uint16) error {
			c.Halted = true
			return nil
		}
		c := m.CPUs[0]
		c.PC = 0x100000
		if err := m.Run(c, 10000); err != nil {
			t.Fatal(err)
		}
		if c.Regs[0] != 0 {
			t.Fatalf("cfg %v: first CAS old = %d, want 0", cfg, c.Regs[0])
		}
		if c.Regs[1] != 9 {
			t.Fatalf("cfg %v: second CAS old = %d, want 9", cfg, c.Regs[1])
		}
		got, _ := m.ReadMem(0x8000, 8)
		if got != 9 {
			t.Fatalf("cfg %v: memory = %d", cfg, got)
		}
		if cfg.CAS == CASCasal && st.Casal != 2 {
			t.Fatalf("casal stats: %+v", st)
		}
		if cfg.CAS == CASExclusiveFenced && (st.ExclLoop != 2 || st.DMBFull != 4) {
			t.Fatalf("exclusive stats: %+v", st)
		}
	}
}

func TestBrcondAndLabels(t *testing.T) {
	blk := tcg.NewBlock()
	l := blk.NewLabel()
	a, b := blk.Temp(), blk.Temp()
	blk.MovI(a, 5)
	blk.MovI(b, 5)
	blk.Brcond(tcg.CondEQ, a, b, l)
	blk.MovI(0, 111) // skipped
	blk.Exit(1)
	blk.SetLabel(l)
	blk.MovI(0, 222)
	blk.Exit(2)

	m, next, _ := execute(t, blk, nil, nil)
	if m.CPUs[0].Regs[0] != 222 || next != 2 {
		t.Fatalf("branch taken path: g0=%d next=%d", m.CPUs[0].Regs[0], next)
	}
}

func TestHelperCallConvention(t *testing.T) {
	blk := tcg.NewBlock()
	a, b, res := blk.Temp(), blk.Temp(), blk.Temp()
	blk.MovI(a, 11)
	blk.MovI(b, 31)
	blk.Emit(tcg.Inst{Op: tcg.OpCall, Helper: tcg.HelperXAdd, Dst: res, A: a, B: b, Size: 8})
	blk.Mov(0, res)
	blk.Exit(0)

	code, st, err := Generate(blk, 0x100000, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Helper != 1 {
		t.Fatalf("helper stats: %+v", st)
	}
	m := machine.New(1 << 21)
	copy(m.Mem[0x100000:], code)
	var gotHelper tcg.Helper
	var gotSize uint8
	m.OnBLR = func(mm *machine.Machine, c *machine.CPU, target uint64) (bool, error) {
		h, size, ok := HelperOf(target)
		if !ok {
			return false, nil
		}
		gotHelper, gotSize = h, size
		// args in X18/X28; return in X18
		c.Regs[18] = c.Regs[18] + c.Regs[28]
		return true, nil
	}
	m.Syscall = func(mm *machine.Machine, c *machine.CPU, imm uint16) error {
		c.Halted = true
		return nil
	}
	c := m.CPUs[0]
	c.PC = 0x100000
	if err := m.Run(c, 10000); err != nil {
		t.Fatal(err)
	}
	if gotHelper != tcg.HelperXAdd || gotSize != 8 {
		t.Fatalf("helper dispatch: %d size %d", gotHelper, gotSize)
	}
	if c.Regs[0] != 42 {
		t.Fatalf("helper result: %d", c.Regs[0])
	}
}

func TestHelperAddrRoundTrip(t *testing.T) {
	for _, h := range []tcg.Helper{0, 1, 2, 100} {
		for _, size := range []uint8{0, 1, 2, 4, 8} {
			addr := HelperAddr(h, size)
			gh, gs, ok := HelperOf(addr)
			if !ok || gh != h || gs != size {
				t.Fatalf("round trip %d/%d → %d/%d/%v", h, size, gh, gs, ok)
			}
		}
	}
	if _, _, ok := HelperOf(0x1234); ok {
		t.Fatal("low address is not a helper")
	}
}

func TestOutOfLocalRegisters(t *testing.T) {
	blk := tcg.NewBlock()
	var last tcg.Temp
	for i := 0; i < 12; i++ { // more than the 8 local host regs
		last = blk.Temp()
		blk.MovI(last, int64(i))
	}
	blk.Mov(0, last)
	blk.Exit(0)
	if _, _, err := Generate(blk, 0, Config{}); err == nil {
		t.Fatal("exceeding local registers must error")
	}
}

// TestDifferentialAgainstInterp cross-checks the backend against the IR
// reference interpreter on random straight-line blocks.
func TestDifferentialAgainstInterp(t *testing.T) {
	ops := []tcg.Opcode{tcg.OpAdd, tcg.OpSub, tcg.OpMul, tcg.OpAnd, tcg.OpOr,
		tcg.OpXor, tcg.OpShl, tcg.OpShr, tcg.OpUDiv, tcg.OpURem}
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		blk := tcg.NewBlock()
		temps := []tcg.Temp{0, 1, 2, 3}
		for i := 0; i < 4; i++ {
			temps = append(temps, blk.Temp())
		}
		addr := blk.Temp()
		blk.MovI(addr, 0x8000)
		pick := func() tcg.Temp { return temps[rng.Intn(len(temps))] }
		for i := 0; i < 12+rng.Intn(12); i++ {
			switch rng.Intn(7) {
			case 0:
				blk.MovI(pick(), int64(rng.Intn(1000)))
			case 1:
				blk.Mov(pick(), pick())
			case 2:
				blk.Alu(ops[rng.Intn(len(ops))], pick(), pick(), pick())
			case 3:
				blk.Ld(pick(), addr, int64(rng.Intn(8))*8, 8)
			case 4:
				blk.St(addr, int64(rng.Intn(8))*8, pick(), 8)
			case 5:
				blk.Emit(tcg.Inst{Op: tcg.OpSetcond, Cond: tcg.Cond(rng.Intn(10)),
					Dst: pick(), A: pick(), B: pick()})
			case 6:
				blk.Emit(tcg.Inst{Op: tcg.OpNot, Dst: pick(), A: pick()})
			}
		}
		blk.Exit(0x42)

		// Reference run.
		it := tcg.NewInterp(blk, 1<<21)
		for g := 0; g < tcg.NumGlobals; g++ {
			it.Temps[g] = uint64(g) * 7919
		}
		for i := 0x8000; i < 0x8040; i++ {
			it.Mem[i] = byte(i * 13)
		}
		if err := it.Run(blk); err != nil {
			t.Fatalf("seed %d: interp: %v", seed, err)
		}

		// Machine run.
		globals := make([]uint64, tcg.NumGlobals)
		for g := range globals {
			globals[g] = uint64(g) * 7919
		}
		m, next, _ := execute(t, blk, globals, func(mem []byte) {
			for i := 0x8000; i < 0x8040; i++ {
				mem[i] = byte(i * 13)
			}
		})
		if next != 0x42 {
			t.Fatalf("seed %d: next pc %#x", seed, next)
		}
		for g := 0; g < tcg.NumGlobals; g++ {
			if m.CPUs[0].Regs[g] != it.Temps[g] {
				t.Fatalf("seed %d: global %d: machine %#x interp %#x\n%s",
					seed, g, m.CPUs[0].Regs[g], it.Temps[g], blk)
			}
		}
		for i := 0x8000; i < 0x8040; i++ {
			if m.Mem[i] != it.Mem[i] {
				t.Fatalf("seed %d: mem[%#x]: machine %d interp %d", seed, i, m.Mem[i], it.Mem[i])
			}
		}
	}
}
