// Package mapping implements the translation (mapping) schemes between the
// three instruction levels of the Risotto paper — x86, TCG IR and Arm — as
// transformations over litmus programs, together with the executable form
// of Theorem 1 (behaviour containment).
//
// Three x86→TCG schemes are provided:
//
//   - QEMU (Figure 2): Fmr;ld (demoted to Frr;ld for x86 guests) and
//     Fmw;st — leading fences, RMWs via helper calls.
//   - Verified (Figure 7a): ld;Frm and Fww;st — Risotto's minimal verified
//     scheme with trailing load fences and leading store fences.
//   - NoFences: no ordering enforcement (the paper's incorrect-but-fast
//     oracle).
//
// And the TCG→Arm schemes:
//
//   - QEMU (Figure 2): Frr→DMBLD, Fmw→DMBFF, Fsc→DMBFF; RMWs become a
//     helper call whose body is either RMW2^AL (GCC 9) or RMW1^AL (GCC 10),
//     with no surrounding fences — the source of the MPQ/SBQ errors.
//   - Verified (Figure 7b): Frr/Frw/Frm→DMBLD, Fww→DMBST,
//     Fwr/Fwm/Fmr/Fmw/Fmm/Fsc→DMBFF, Facq/Frel→nothing; RMW becomes either
//     DMBFF;RMW2;DMBFF or RMW1^AL.
package mapping

import (
	"fmt"

	"repro/internal/litmus"
	"repro/internal/memmodel"
)

// X86Scheme selects the x86→TCG IR mapping.
type X86Scheme int

const (
	// X86Qemu is QEMU's original scheme (leading Fmr/Fmw fences, with the
	// documented Frr demotion for x86 guests).
	X86Qemu X86Scheme = iota
	// X86Verified is Risotto's verified scheme (Figure 7a).
	X86Verified
	// X86NoFences emits no fences at all (incorrect; performance oracle).
	X86NoFences
)

// RMWStyle selects how a TCG RMW is lowered to Arm.
type RMWStyle int

const (
	// RMWCasal lowers to the single casal instruction (RMW1^AL).
	RMWCasal RMWStyle = iota
	// RMWExclusiveFenced lowers to DMBFF; RMW2; DMBFF (verified scheme's
	// exclusive-pair option).
	RMWExclusiveFenced
	// RMWHelperCasal models QEMU's helper call compiled by GCC ≥ 10:
	// a bare RMW1^AL with no surrounding fences.
	RMWHelperCasal
	// RMWHelperExclusiveAL models QEMU's helper call compiled by GCC 9:
	// a bare RMW2^AL (ldaxr/stlxr) with no surrounding fences.
	RMWHelperExclusiveAL
)

// ArmScheme selects the TCG IR→Arm mapping.
type ArmScheme int

const (
	// ArmQemu is QEMU's fence lowering.
	ArmQemu ArmScheme = iota
	// ArmVerified is Risotto's verified lowering (Figure 7b).
	ArmVerified
)

// mapOps rewrites each op through f, recursing into conditionals.
func mapOps(ops []litmus.Op, f func(litmus.Op) []litmus.Op) []litmus.Op {
	var out []litmus.Op
	for _, op := range ops {
		if ifOp, ok := op.(litmus.If); ok {
			out = append(out, litmus.If{
				Reg: ifOp.Reg, Eq: ifOp.Eq, Val: ifOp.Val,
				Body: mapOps(ifOp.Body, f),
			})
			continue
		}
		out = append(out, f(op)...)
	}
	return out
}

func mapProgram(p *litmus.Program, suffix string, f func(litmus.Op) []litmus.Op) *litmus.Program {
	out := &litmus.Program{Name: p.Name + suffix}
	for _, t := range p.Threads {
		out.Threads = append(out.Threads, mapOps(t, f))
	}
	return out
}

// X86ToTCG translates an x86-level litmus program to the TCG IR level.
func X86ToTCG(p *litmus.Program, scheme X86Scheme) *litmus.Program {
	return mapProgram(p, "→tcg", func(op litmus.Op) []litmus.Op {
		switch o := op.(type) {
		case litmus.Load:
			switch scheme {
			case X86Qemu:
				// Fmr demoted to Frr for x86 guests (§3.1).
				return []litmus.Op{litmus.Fence{K: memmodel.FenceFrr}, plainLoad(o)}
			case X86Verified:
				return []litmus.Op{plainLoad(o), litmus.Fence{K: memmodel.FenceFrm}}
			default:
				return []litmus.Op{plainLoad(o)}
			}
		case litmus.Store:
			switch scheme {
			case X86Qemu:
				return []litmus.Op{litmus.Fence{K: memmodel.FenceFmw}, plainStore(o)}
			case X86Verified:
				return []litmus.Op{litmus.Fence{K: memmodel.FenceFww}, plainStore(o)}
			default:
				return []litmus.Op{plainStore(o)}
			}
		case litmus.StoreReg:
			s := litmus.StoreReg{Loc: o.Loc, Src: o.Src}
			switch scheme {
			case X86Qemu:
				return []litmus.Op{litmus.Fence{K: memmodel.FenceFmw}, s}
			case X86Verified:
				return []litmus.Op{litmus.Fence{K: memmodel.FenceFww}, s}
			default:
				return []litmus.Op{s}
			}
		case litmus.LoadIdx:
			l := litmus.LoadIdx{Dst: o.Dst, Idx: o.Idx, Loc0: o.Loc0, Loc1: o.Loc1}
			switch scheme {
			case X86Qemu:
				return []litmus.Op{litmus.Fence{K: memmodel.FenceFrr}, l}
			case X86Verified:
				return []litmus.Op{l, litmus.Fence{K: memmodel.FenceFrm}}
			default:
				return []litmus.Op{l}
			}
		case litmus.StoreIdx:
			s := litmus.StoreIdx{Idx: o.Idx, Loc0: o.Loc0, Loc1: o.Loc1, Val: o.Val}
			switch scheme {
			case X86Qemu:
				return []litmus.Op{litmus.Fence{K: memmodel.FenceFmw}, s}
			case X86Verified:
				return []litmus.Op{litmus.Fence{K: memmodel.FenceFww}, s}
			default:
				return []litmus.Op{s}
			}
		case litmus.CAS:
			// All schemes keep the RMW an IR-level RMW with SC semantics
			// (QEMU routes it through a helper, but at the IR level the
			// helper is an opaque SC atomic; the divergence appears in the
			// Arm lowering).
			return []litmus.Op{litmus.CAS{
				Loc: o.Loc, Expect: o.Expect, New: o.New, Dst: o.Dst,
				Attr: litmus.Attr{SC: true, Class: o.Class},
			}}
		case litmus.Fence:
			if o.K == memmodel.FenceMFENCE {
				return []litmus.Op{litmus.Fence{K: memmodel.FenceFsc}}
			}
			return []litmus.Op{o}
		default:
			return []litmus.Op{op}
		}
	})
}

func plainLoad(o litmus.Load) litmus.Load {
	return litmus.Load{Dst: o.Dst, Loc: o.Loc}
}

func plainStore(o litmus.Store) litmus.Store {
	return litmus.Store{Loc: o.Loc, Val: o.Val}
}

// lowerFence maps a TCG fence to its Arm fence (FenceNone = emit nothing).
func lowerFence(k memmodel.Fence, scheme ArmScheme) memmodel.Fence {
	switch k {
	case memmodel.FenceFrr, memmodel.FenceFrw, memmodel.FenceFrm:
		return memmodel.FenceDMBLD
	case memmodel.FenceFww:
		if scheme == ArmVerified {
			return memmodel.FenceDMBST
		}
		return memmodel.FenceDMBFF
	case memmodel.FenceFwr, memmodel.FenceFwm, memmodel.FenceFmr,
		memmodel.FenceFmw, memmodel.FenceFmm, memmodel.FenceFsc:
		return memmodel.FenceDMBFF
	case memmodel.FenceFacq, memmodel.FenceFrel:
		return memmodel.FenceNone
	default:
		return k
	}
}

// TCGToArm translates a TCG-level litmus program to the Arm level.
func TCGToArm(p *litmus.Program, scheme ArmScheme, rmw RMWStyle) *litmus.Program {
	return mapProgram(p, "→arm", func(op litmus.Op) []litmus.Op {
		switch o := op.(type) {
		case litmus.Load:
			return []litmus.Op{litmus.Load{Dst: o.Dst, Loc: o.Loc}}
		case litmus.Store:
			return []litmus.Op{litmus.Store{Loc: o.Loc, Val: o.Val}}
		case litmus.StoreReg:
			return []litmus.Op{litmus.StoreReg{Loc: o.Loc, Src: o.Src}}
		case litmus.LoadIdx:
			return []litmus.Op{litmus.LoadIdx{Dst: o.Dst, Idx: o.Idx, Loc0: o.Loc0, Loc1: o.Loc1}}
		case litmus.StoreIdx:
			return []litmus.Op{litmus.StoreIdx{Idx: o.Idx, Loc0: o.Loc0, Loc1: o.Loc1, Val: o.Val}}
		case litmus.Fence:
			lk := lowerFence(o.K, scheme)
			if lk == memmodel.FenceNone {
				return nil
			}
			return []litmus.Op{litmus.Fence{K: lk}}
		case litmus.CAS:
			switch rmw {
			case RMWCasal, RMWHelperCasal:
				return []litmus.Op{litmus.CAS{
					Loc: o.Loc, Expect: o.Expect, New: o.New, Dst: o.Dst,
					Attr: litmus.Attr{Acq: true, Rel: true, Class: memmodel.RMWAmo},
				}}
			case RMWHelperExclusiveAL:
				return []litmus.Op{litmus.CAS{
					Loc: o.Loc, Expect: o.Expect, New: o.New, Dst: o.Dst,
					Attr: litmus.Attr{Acq: true, Rel: true, Class: memmodel.RMWLxSx},
				}}
			default: // RMWExclusiveFenced
				return []litmus.Op{
					litmus.Fence{K: memmodel.FenceDMBFF},
					litmus.CAS{
						Loc: o.Loc, Expect: o.Expect, New: o.New, Dst: o.Dst,
						Attr: litmus.Attr{Class: memmodel.RMWLxSx},
					},
					litmus.Fence{K: memmodel.FenceDMBFF},
				}
			}
		default:
			return []litmus.Op{op}
		}
	})
}

// X86ToArm composes the two mapping steps.
func X86ToArm(p *litmus.Program, xs X86Scheme, as ArmScheme, rmw RMWStyle) *litmus.Program {
	return TCGToArm(X86ToTCG(p, xs), as, rmw)
}

// TranslateVerified runs src through Risotto's verified chain (Figure 7)
// with the given RMW lowering style, returning both the intermediate TCG
// program and the final Arm program. The Arm program is derived from the
// returned TCG program, so campaign drivers checking both Theorem-1 legs
// translate once per leg instead of re-running the x86 step.
func TranslateVerified(src *litmus.Program, rmw RMWStyle) (tcg, arm *litmus.Program) {
	tcg = X86ToTCG(src, X86Verified)
	arm = TCGToArm(tcg, ArmVerified, rmw)
	return tcg, arm
}

// Verification is the result of one Theorem-1 check.
type Verification struct {
	// Source and Target name the programs compared.
	Source, Target string
	// SourceModel and TargetModel name the models used.
	SourceModel, TargetModel string
	// NewBehaviours lists target outcomes absent from the source — empty
	// iff the mapping is correct for this program.
	NewBehaviours []litmus.Outcome
	// Err, when non-nil, reports that an outcome set could not be
	// enumerated (a worker shard failed beyond recovery); it names the
	// program and shard. NewBehaviours is then meaningless.
	Err error
}

// Correct reports whether the translation introduced no new behaviour. A
// verification that failed to enumerate is never correct.
func (v Verification) Correct() bool { return v.Err == nil && len(v.NewBehaviours) == 0 }

// VerifyTheorem1 checks behaviour containment: every outcome of tgt under
// mt must be an outcome of src under ms. Outcome sets are computed with the
// parallel enumerator through the process-wide cache, so sweeping one source
// program against several candidate translations enumerates it only once.
// Enumeration failures (a panicked worker shard whose serial retry also
// failed) surface in the result's Err instead of crashing the sweep.
// Additional litmus options (worker count, a different cache, an
// observability scope) may be appended; they are applied on top of the
// default cache.
func VerifyTheorem1(src *litmus.Program, ms memmodel.Model, tgt *litmus.Program, mt memmodel.Model, opts ...litmus.Option) Verification {
	v := Verification{
		Source:      src.Name,
		Target:      tgt.Name,
		SourceModel: ms.Name(),
		TargetModel: mt.Name(),
	}
	all := append([]litmus.Option{litmus.WithCache(litmus.DefaultCache)}, opts...)
	srcOut, err := litmus.Enumerate(src, ms, all...)
	if err != nil {
		v.Err = fmt.Errorf("mapping: enumerating source %q under %s: %w", src.Name, ms.Name(), err)
		return v
	}
	tgtOut, err := litmus.Enumerate(tgt, mt, all...)
	if err != nil {
		v.Err = fmt.Errorf("mapping: enumerating target %q under %s: %w", tgt.Name, mt.Name(), err)
		return v
	}
	v.NewBehaviours = tgtOut.Minus(srcOut)
	return v
}
