package mapping

import (
	"fmt"
	"strings"

	"repro/internal/litmus"
	"repro/internal/memmodel"
)

// Scheme is one registered translation hop between two instruction
// levels. The concrete translation functions (X86ToTCG, TCGToArm, …)
// stay plain functions; schemes wrap them with routing metadata so chains
// compose out of registered hops instead of hardcoded call sequences.
type Scheme interface {
	// Name identifies the scheme ("x86→tcg/verified", …).
	Name() string
	// Src and Dst are the levels the scheme translates between.
	Src() memmodel.Level
	Dst() memmodel.Level
	// Verified reports whether the scheme is claimed sound (Theorem 1 must
	// hold for it); the matrix asserts every verified route passes and
	// known-bad (unverified) routes are reported, not required to pass.
	Verified() bool
	// Apply translates a program of the Src level to the Dst level.
	Apply(p *litmus.Program) *litmus.Program
}

// scheme is the function-backed Scheme implementation.
type scheme struct {
	name     string
	src, dst memmodel.Level
	verified bool
	apply    func(*litmus.Program) *litmus.Program
}

func (s *scheme) Name() string                            { return s.name }
func (s *scheme) Src() memmodel.Level                     { return s.src }
func (s *scheme) Dst() memmodel.Level                     { return s.dst }
func (s *scheme) Verified() bool                          { return s.verified }
func (s *scheme) Apply(p *litmus.Program) *litmus.Program { return s.apply(p) }

// NewScheme wraps a translation function as a registrable Scheme.
func NewScheme(name string, src, dst memmodel.Level, verified bool, apply func(*litmus.Program) *litmus.Program) Scheme {
	return &scheme{name: name, src: src, dst: dst, verified: verified, apply: apply}
}

// SchemeRegistry resolves scheme names and enumerates routes (scheme
// chains) between levels.
type SchemeRegistry struct {
	schemes []Scheme
	byName  map[string]Scheme
}

// NewSchemeRegistry returns an empty scheme registry.
func NewSchemeRegistry() *SchemeRegistry {
	return &SchemeRegistry{byName: make(map[string]Scheme)}
}

// Register adds a scheme; duplicate names and self-loops (Src == Dst,
// which would make route enumeration diverge) are errors.
func (r *SchemeRegistry) Register(s Scheme) error {
	if s.Src() == s.Dst() {
		return fmt.Errorf("mapping: scheme %q maps level %q to itself", s.Name(), s.Src())
	}
	if _, dup := r.byName[s.Name()]; dup {
		return fmt.Errorf("mapping: scheme %q already registered", s.Name())
	}
	r.byName[s.Name()] = s
	r.schemes = append(r.schemes, s)
	return nil
}

// MustRegister is Register, panicking on error.
func (r *SchemeRegistry) MustRegister(s Scheme) {
	if err := r.Register(s); err != nil {
		panic(err)
	}
}

// Lookup resolves a scheme by name, with the canonical unknown-scheme
// error listing what is registered.
func (r *SchemeRegistry) Lookup(name string) (Scheme, error) {
	if s, ok := r.byName[name]; ok {
		return s, nil
	}
	names := make([]string, len(r.schemes))
	for i, s := range r.schemes {
		names[i] = s.Name()
	}
	return nil, fmt.Errorf("unknown mapping scheme %q (known schemes: %s)", name, strings.Join(names, ", "))
}

// Schemes returns every registered scheme in registration order.
func (r *SchemeRegistry) Schemes() []Scheme { return append([]Scheme(nil), r.schemes...) }

// Routes enumerates every simple route (no level visited twice) from src
// to dst, depth-first in registration order, so the result is
// deterministic for a deterministically-built registry. src == dst yields
// no routes: models of one level are compared directly, not via schemes.
func (r *SchemeRegistry) Routes(src, dst memmodel.Level) [][]Scheme {
	var out [][]Scheme
	var chain []Scheme
	visited := map[memmodel.Level]bool{src: true}
	var walk func(at memmodel.Level)
	walk = func(at memmodel.Level) {
		for _, s := range r.schemes {
			if s.Src() != at || visited[s.Dst()] {
				continue
			}
			chain = append(chain, s)
			if s.Dst() == dst {
				out = append(out, append([]Scheme(nil), chain...))
			} else {
				visited[s.Dst()] = true
				walk(s.Dst())
				visited[s.Dst()] = false
			}
			chain = chain[:len(chain)-1]
		}
	}
	walk(src)
	return out
}

// VerifiedRoute returns the first shortest all-verified route from src to
// dst (nil if none); an empty route for src == dst. "First" follows
// registration order, so the canonical verified chain is whichever sound
// scheme was registered first per hop.
func (r *SchemeRegistry) VerifiedRoute(src, dst memmodel.Level) ([]Scheme, bool) {
	if src == dst {
		return []Scheme{}, true
	}
	var best []Scheme
	for _, route := range r.Routes(src, dst) {
		ok := true
		for _, s := range route {
			if !s.Verified() {
				ok = false
				break
			}
		}
		if ok && (best == nil || len(route) < len(best)) {
			best = route
		}
	}
	return best, best != nil
}

// ApplyRoute runs a program through every hop of a route.
func ApplyRoute(route []Scheme, p *litmus.Program) *litmus.Program {
	for _, s := range route {
		p = s.Apply(p)
	}
	return p
}

// RouteName renders a route as its hop names joined with " + ".
func RouteName(route []Scheme) string {
	if len(route) == 0 {
		return "(identity)"
	}
	names := make([]string, len(route))
	for i, s := range route {
		names[i] = s.Name()
	}
	return strings.Join(names, " + ")
}

// RouteVerified reports whether every hop of the route is verified.
func RouteVerified(route []Scheme) bool {
	for _, s := range route {
		if !s.Verified() {
			return false
		}
	}
	return true
}

// X86ToSPARC translates an x86-level program to the SPARC level: both are
// TSO, so accesses carry over unchanged and MFENCE becomes the minimal
// TSO-sufficient barrier, membar #StoreLoad (the other three directions
// are already preserved program order).
func X86ToSPARC(p *litmus.Program) *litmus.Program {
	return mapProgram(p, "→sparc", func(op litmus.Op) []litmus.Op {
		if f, ok := op.(litmus.Fence); ok && f.K == memmodel.FenceMFENCE {
			return []litmus.Op{litmus.Fence{K: memmodel.FenceMembarSL}}
		}
		return []litmus.Op{op}
	})
}

// SPARCToTCG translates a SPARC-level program to the TCG IR level with
// Risotto's verified fence placement (Figure 7a: ld;Frm and Fww;st, RMWs
// as SC IR atomics) extended with the membar taxonomy: each membar
// direction maps to the directional IR fence of the same shape.
func SPARCToTCG(p *litmus.Program) *litmus.Program {
	lowered := mapProgram(p, "", func(op litmus.Op) []litmus.Op {
		f, ok := op.(litmus.Fence)
		if !ok {
			return []litmus.Op{op}
		}
		switch f.K {
		case memmodel.FenceMembarLL:
			return []litmus.Op{litmus.Fence{K: memmodel.FenceFrr}}
		case memmodel.FenceMembarLS:
			return []litmus.Op{litmus.Fence{K: memmodel.FenceFrw}}
		case memmodel.FenceMembarSL:
			return []litmus.Op{litmus.Fence{K: memmodel.FenceFwr}}
		case memmodel.FenceMembarSS:
			return []litmus.Op{litmus.Fence{K: memmodel.FenceFww}}
		default:
			return []litmus.Op{op}
		}
	})
	lowered.Name = p.Name
	return X86ToTCG(lowered, X86Verified)
}

// X86ToIMM translates an x86-level program to the IMM level. IMM speaks
// the IR fence vocabulary, so the verified IR fence placement is exactly
// the verified IMM placement; only the level label differs.
func X86ToIMM(p *litmus.Program) *litmus.Program {
	out := X86ToTCG(p, X86Verified)
	out.Name = p.Name + "→imm"
	return out
}

// IMMToArm lowers an IMM-level program to Arm. IMM programs use the IR
// fence vocabulary and IMM's dependency order is a subset of Armed-Cats'
// dob, so the verified IR lowering applies unchanged.
func IMMToArm(p *litmus.Program) *litmus.Program {
	return TCGToArm(p, ArmVerified, RMWCasal)
}

// DefaultSchemes returns the registry of built-in schemes: Risotto's
// verified x86→IR→Arm chain (both RMW lowering styles), QEMU's original
// lowerings (all three known-bad: the leading-fence x86→IR mapping
// already misorders MPQ's failed RMW at the IR level, and the IR→Arm RMW
// helper lowerings are the paper's §3.1–3.2 translation errors), and the
// SPARC/IMM hops. Adding a scheme elsewhere means one NewScheme call plus
// one line here.
func DefaultSchemes() *SchemeRegistry {
	r := NewSchemeRegistry()
	r.MustRegister(NewScheme("x86→tcg/verified", memmodel.LevelX86, memmodel.LevelTCG, true,
		func(p *litmus.Program) *litmus.Program { return X86ToTCG(p, X86Verified) }))
	r.MustRegister(NewScheme("x86→tcg/qemu", memmodel.LevelX86, memmodel.LevelTCG, false,
		func(p *litmus.Program) *litmus.Program { return X86ToTCG(p, X86Qemu) }))
	r.MustRegister(NewScheme("x86→sparc/membar", memmodel.LevelX86, memmodel.LevelSPARC, true, X86ToSPARC))
	r.MustRegister(NewScheme("x86→imm/verified", memmodel.LevelX86, memmodel.LevelIMM, true, X86ToIMM))
	r.MustRegister(NewScheme("sparc→tcg/verified", memmodel.LevelSPARC, memmodel.LevelTCG, true, SPARCToTCG))
	r.MustRegister(NewScheme("tcg→arm/verified", memmodel.LevelTCG, memmodel.LevelArm, true,
		func(p *litmus.Program) *litmus.Program { return TCGToArm(p, ArmVerified, RMWCasal) }))
	r.MustRegister(NewScheme("tcg→arm/verified-lxsx", memmodel.LevelTCG, memmodel.LevelArm, true,
		func(p *litmus.Program) *litmus.Program { return TCGToArm(p, ArmVerified, RMWExclusiveFenced) }))
	r.MustRegister(NewScheme("tcg→arm/qemu-casal", memmodel.LevelTCG, memmodel.LevelArm, false,
		func(p *litmus.Program) *litmus.Program { return TCGToArm(p, ArmQemu, RMWHelperCasal) }))
	r.MustRegister(NewScheme("tcg→arm/qemu-lxsx", memmodel.LevelTCG, memmodel.LevelArm, false,
		func(p *litmus.Program) *litmus.Program { return TCGToArm(p, ArmQemu, RMWHelperExclusiveAL) }))
	r.MustRegister(NewScheme("imm→arm/verified", memmodel.LevelIMM, memmodel.LevelArm, true, IMMToArm))
	return r
}
