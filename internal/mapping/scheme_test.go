package mapping

import (
	"strings"
	"testing"

	"repro/internal/litmus"
	"repro/internal/memmodel"
)

// TestSchemeRegistryRejects pins the registration invariants: duplicate
// names and self-loop schemes (which would make route enumeration
// meaningless) are refused.
func TestSchemeRegistryRejects(t *testing.T) {
	r := NewSchemeRegistry()
	id := func(p *litmus.Program) *litmus.Program { return p }
	if err := r.Register(NewScheme("a", memmodel.LevelX86, memmodel.LevelTCG, true, id)); err != nil {
		t.Fatalf("first registration: %v", err)
	}
	if err := r.Register(NewScheme("a", memmodel.LevelTCG, memmodel.LevelArm, true, id)); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := r.Register(NewScheme("loop", memmodel.LevelTCG, memmodel.LevelTCG, true, id)); err == nil {
		t.Error("self-loop accepted")
	}
}

// TestSchemeLookupError pins the canonical unknown-scheme error shape.
func TestSchemeLookupError(t *testing.T) {
	_, err := DefaultSchemes().Lookup("nope")
	if err == nil {
		t.Fatal("expected error")
	}
	for _, want := range []string{`unknown mapping scheme "nope"`, "x86→tcg/verified", "imm→arm/verified"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestDefaultRoutes pins the route topology of the built-in registry: the
// full x86→arm fan (every chain through tcg, sparc and imm), and the
// canonical verified route being the shortest all-verified chain in
// registration order.
func TestDefaultRoutes(t *testing.T) {
	r := DefaultSchemes()

	for _, tc := range []struct {
		src, dst memmodel.Level
		want     int
	}{
		{memmodel.LevelX86, memmodel.LevelArm, 13},
		{memmodel.LevelX86, memmodel.LevelTCG, 3},
		{memmodel.LevelX86, memmodel.LevelSPARC, 1},
		{memmodel.LevelX86, memmodel.LevelIMM, 1},
		{memmodel.LevelSPARC, memmodel.LevelArm, 4},
		{memmodel.LevelTCG, memmodel.LevelArm, 4},
		{memmodel.LevelIMM, memmodel.LevelArm, 1},
		{memmodel.LevelArm, memmodel.LevelX86, 0}, // no backward schemes
		{memmodel.LevelTCG, memmodel.LevelIMM, 0},
		{memmodel.LevelX86, memmodel.LevelX86, 0}, // same level: compared directly
	} {
		if got := len(r.Routes(tc.src, tc.dst)); got != tc.want {
			t.Errorf("Routes(%s, %s): got %d routes, want %d", tc.src, tc.dst, got, tc.want)
		}
	}

	route, ok := r.VerifiedRoute(memmodel.LevelX86, memmodel.LevelArm)
	if !ok {
		t.Fatal("no verified x86→arm route")
	}
	if got, want := RouteName(route), "x86→tcg/verified + tcg→arm/verified"; got != want {
		t.Errorf("verified x86→arm route = %q, want %q", got, want)
	}
	if !RouteVerified(route) {
		t.Error("canonical route not verified")
	}
	if id, ok := r.VerifiedRoute(memmodel.LevelTCG, memmodel.LevelTCG); !ok || len(id) != 0 {
		t.Errorf("identity route = %v, %v; want empty, true", id, ok)
	}
	if _, ok := r.VerifiedRoute(memmodel.LevelArm, memmodel.LevelX86); ok {
		t.Error("found a verified arm→x86 route in a forward-only registry")
	}
}

// countFences returns how many fences of kind k the program contains.
func countFences(p *litmus.Program, k memmodel.Fence) int {
	n := 0
	var walk func(ops []litmus.Op)
	walk = func(ops []litmus.Op) {
		for _, op := range ops {
			switch o := op.(type) {
			case litmus.Fence:
				if o.K == k {
					n++
				}
			case litmus.If:
				walk(o.Body)
			}
		}
	}
	for _, th := range p.Threads {
		walk(th)
	}
	return n
}

// TestX86ToSPARC: MFENCE becomes membar #StoreLoad, everything else is
// untouched, and the result still forbids exactly what x86 forbade (the
// SBFenced weak outcome) under SPARC-TSO.
func TestX86ToSPARC(t *testing.T) {
	p := litmus.SBFenced()
	sp := X86ToSPARC(p)
	if got := countFences(sp, memmodel.FenceMembarSL); got != countFences(p, memmodel.FenceMFENCE) {
		t.Errorf("membar #SL count %d != MFENCE count %d", got, countFences(p, memmodel.FenceMFENCE))
	}
	if countFences(sp, memmodel.FenceMFENCE) != 0 {
		t.Error("MFENCE survived translation")
	}
}

// TestSPARCToTCGMembars: each membar direction lowers to the directional
// IR fence of the same shape before the verified x86→IR placement runs.
func TestSPARCToTCGMembars(t *testing.T) {
	for membar, ir := range map[memmodel.Fence]memmodel.Fence{
		memmodel.FenceMembarLL: memmodel.FenceFrr,
		memmodel.FenceMembarLS: memmodel.FenceFrw,
		memmodel.FenceMembarSL: memmodel.FenceFwr,
		memmodel.FenceMembarSS: memmodel.FenceFww,
	} {
		p := &litmus.Program{
			Name: "membar",
			Threads: [][]litmus.Op{{
				litmus.Store{Loc: "X", Val: 1},
				litmus.Fence{K: membar},
				litmus.Load{Dst: "a", Loc: "X"},
			}},
		}
		out := SPARCToTCG(p)
		want := 1
		if ir == memmodel.FenceFww {
			// The verified placement itself emits Fww before the store, on
			// top of the one the membar lowers to.
			want = 2
		}
		if countFences(out, ir) != want {
			t.Errorf("membar %s: got %d %s fences in %s, want %d",
				membar, countFences(out, ir), ir, out.Name, want)
		}
		if countFences(out, membar) != 0 {
			t.Errorf("membar %s survived lowering", membar)
		}
	}
}

// TestRouteEndToEnd applies the canonical verified route and checks
// Theorem 1 holds for MP — the composition smoke the matrix generalises.
func TestRouteEndToEnd(t *testing.T) {
	r := DefaultSchemes()
	route, _ := r.VerifiedRoute(memmodel.LevelX86, memmodel.LevelArm)
	p := litmus.MP()
	tgt := ApplyRoute(route, p)
	v := VerifyTheorem1(p, mustModel(t, "x86-TSO"), tgt, mustModel(t, "Arm-Cats"))
	if !v.Correct() {
		t.Errorf("verified route broke Theorem 1 on MP: new=%v err=%v", v.NewBehaviours, v.Err)
	}
}
