package mapping_test

import (
	"fmt"

	"repro/internal/litmus"
	"repro/internal/mapping"
	"repro/internal/models/armcats"
	"repro/internal/models/x86tso"
)

// ExampleVerifyTheorem1 reproduces the paper's MPQ finding: QEMU's
// translation introduces a behaviour x86 forbids; Risotto's verified
// translation does not.
func ExampleVerifyTheorem1() {
	mpq := litmus.MPQ()

	qemu := mapping.X86ToArm(mpq, mapping.X86Qemu, mapping.ArmQemu, mapping.RMWHelperCasal)
	v := mapping.VerifyTheorem1(mpq, x86tso.New(), qemu, armcats.New())
	fmt.Println("QEMU translation correct:", v.Correct())

	riso := mapping.X86ToArm(mpq, mapping.X86Verified, mapping.ArmVerified, mapping.RMWCasal)
	v = mapping.VerifyTheorem1(mpq, x86tso.New(), riso, armcats.New())
	fmt.Println("Risotto translation correct:", v.Correct())
	// Output:
	// QEMU translation correct: false
	// Risotto translation correct: true
}

// ExampleX86ToTCG shows the verified Figure-7a mapping on a load-store
// pair: trailing Frm after the load, leading Fww before the store.
func ExampleX86ToTCG() {
	p := &litmus.Program{
		Name: "tiny",
		Threads: [][]litmus.Op{{
			litmus.Load{Dst: "a", Loc: "X"},
			litmus.Store{Loc: "Y", Val: 1},
		}},
	}
	ir := mapping.X86ToTCG(p, mapping.X86Verified)
	for _, op := range ir.Threads[0] {
		fmt.Printf("%T\n", op)
	}
	// Output:
	// litmus.Load
	// litmus.Fence
	// litmus.Fence
	// litmus.Store
}
