package mapping

import (
	"testing"

	"repro/internal/litmus"
	"repro/internal/models/armcats"
	"repro/internal/models/tcgmm"
	"repro/internal/models/x86tso"
)

// TestVerifiedX86ToTCG checks Theorem 1 for step (1) of Figure 7 over the
// whole x86 corpus: the verified x86→TCG scheme introduces no behaviour.
func TestVerifiedX86ToTCG(t *testing.T) {
	for _, p := range litmus.X86Corpus() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tgt := X86ToTCG(p, X86Verified)
			v := VerifyTheorem1(p, x86tso.New(), tgt, tcgmm.New())
			if !v.Correct() {
				t.Fatalf("verified x86→TCG introduced behaviours on %s: %v", p.Name, v.NewBehaviours)
			}
		})
	}
}

// TestQemuX86ToTCG checks QEMU's (stronger-than-needed) IR mapping against
// the IR model. It is correct on everything except MPQ: QEMU places fences
// *before* accesses, so nothing orders a load with a po-later *failed* RMW
// (a failed RMW generates only an Rsc event, which Figure 6's ord orders
// with successors, not predecessors). This is the IR-level shadow of the
// MPQ translation error; Risotto's trailing Frm after loads fixes it.
func TestQemuX86ToTCG(t *testing.T) {
	for _, p := range litmus.X86Corpus() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tgt := X86ToTCG(p, X86Qemu)
			v := VerifyTheorem1(p, x86tso.New(), tgt, tcgmm.New())
			if p.Name == "MPQ" {
				if v.Correct() {
					t.Fatal("QEMU's leading-fence IR mapping must already be erroneous on MPQ")
				}
				return
			}
			if !v.Correct() {
				t.Fatalf("QEMU x86→TCG introduced behaviours on %s: %v", p.Name, v.NewBehaviours)
			}
		})
	}
}

// TestVerifiedTCGToArm checks Theorem 1 for step (3): TCG programs produced
// by the verified IR mapping, lowered with the verified Arm scheme, under
// the corrected Armed-Cats model — for both RMW lowerings of Figure 7b.
func TestVerifiedTCGToArm(t *testing.T) {
	styles := map[string]RMWStyle{"casal": RMWCasal, "rmw2+dmb": RMWExclusiveFenced}
	for name, style := range styles {
		for _, p := range litmus.X86Corpus() {
			p, style := p, style
			t.Run(name+"/"+p.Name, func(t *testing.T) {
				ir := X86ToTCG(p, X86Verified)
				arm := TCGToArm(ir, ArmVerified, style)
				v := VerifyTheorem1(ir, tcgmm.New(), arm, armcats.New())
				if !v.Correct() {
					t.Fatalf("verified TCG→Arm (%s) introduced behaviours on %s: %v",
						name, p.Name, v.NewBehaviours)
				}
			})
		}
	}
}

// TestVerifiedEndToEnd checks the composed x86→Arm translation (Figure 7c).
func TestVerifiedEndToEnd(t *testing.T) {
	styles := map[string]RMWStyle{"casal": RMWCasal, "rmw2+dmb": RMWExclusiveFenced}
	for name, style := range styles {
		for _, p := range litmus.X86Corpus() {
			p, style := p, style
			t.Run(name+"/"+p.Name, func(t *testing.T) {
				arm := X86ToArm(p, X86Verified, ArmVerified, style)
				v := VerifyTheorem1(p, x86tso.New(), arm, armcats.New())
				if !v.Correct() {
					t.Fatalf("verified x86→Arm (%s) introduced behaviours on %s: %v",
						name, p.Name, v.NewBehaviours)
				}
			})
		}
	}
}

// TestQemuEndToEndErrors reproduces §3.2: QEMU's composed translation is
// erroneous on MPQ (with the GCC-10 casal helper) and on SBQ (with the
// GCC-9 ldaxr/stlxr helper).
func TestQemuEndToEndErrors(t *testing.T) {
	mpq := X86ToArm(litmus.MPQ(), X86Qemu, ArmQemu, RMWHelperCasal)
	v := VerifyTheorem1(litmus.MPQ(), x86tso.New(), mpq, armcats.New())
	if v.Correct() {
		t.Fatal("QEMU translation of MPQ must exhibit new behaviour (a=1,X=1)")
	}

	sbq := X86ToArm(litmus.SBQ(), X86Qemu, ArmQemu, RMWHelperExclusiveAL)
	v = VerifyTheorem1(litmus.SBQ(), x86tso.New(), sbq, armcats.New())
	if v.Correct() {
		t.Fatal("QEMU translation of SBQ must exhibit new behaviour (a=b=0)")
	}
}

// TestQemuCorrectWithoutRMWs shows QEMU's scheme is fine on the fence/plain
// access corpus — its errors are confined to RMW handling.
func TestQemuCorrectWithoutRMWs(t *testing.T) {
	for _, p := range []*litmus.Program{
		litmus.MP(), litmus.SB(), litmus.SBFenced(), litmus.LB(),
		litmus.S(), litmus.R(), litmus.RFenced(), litmus.TwoPlusTwoW(),
		litmus.CoRR(), litmus.CoWW(), litmus.CoWR(),
	} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			arm := X86ToArm(p, X86Qemu, ArmQemu, RMWHelperCasal)
			v := VerifyTheorem1(p, x86tso.New(), arm, armcats.New())
			if !v.Correct() {
				t.Fatalf("QEMU translation of RMW-free %s should be correct: %v",
					p.Name, v.NewBehaviours)
			}
		})
	}
}

// TestNoFencesIncorrect shows the no-fences oracle is incorrect: MP gains
// the weak outcome.
func TestNoFencesIncorrect(t *testing.T) {
	arm := X86ToArm(litmus.MP(), X86NoFences, ArmVerified, RMWCasal)
	v := VerifyTheorem1(litmus.MP(), x86tso.New(), arm, armcats.New())
	if v.Correct() {
		t.Fatal("no-fences translation of MP must introduce the weak outcome")
	}
}

// TestArmCatsIntendedMappingSBAL reproduces §3.3: the Figure-3 "intended"
// Armed-Cats mapping (LDRQ/STRL/casal) is erroneous for SBAL under the
// original model, and correct under the corrected model.
func TestArmCatsIntendedMappingSBAL(t *testing.T) {
	src := litmus.SBAL()
	tgt := litmus.SBALArm()

	v := VerifyTheorem1(src, x86tso.New(), tgt, armcats.NewVariant(armcats.Original))
	if v.Correct() {
		t.Fatal("under the original Armed-Cats model, the Figure-3 mapping of SBAL must be erroneous")
	}

	v = VerifyTheorem1(src, x86tso.New(), tgt, armcats.New())
	if !v.Correct() {
		t.Fatalf("under the corrected model the Figure-3 mapping of SBAL is correct; got %v", v.NewBehaviours)
	}
}

// TestMinimality spot-checks the Figure-8 argument that the verified
// mapping's fences are necessary: dropping the trailing Frm after loads
// re-admits the MP weak outcome at the IR level, and dropping the leading
// Fww re-admits it too.
func TestMinimality(t *testing.T) {
	// Full verified mapping of MP at IR level forbids the weak outcome.
	ir := X86ToTCG(litmus.MP(), X86Verified)
	if out := litmus.Outcomes(ir, tcgmm.New()); out.Contains("1:a=1", "1:b=0") {
		t.Fatal("verified IR mapping of MP must forbid the weak outcome")
	}
	// No-fences mapping allows it (both fences dropped).
	ir = X86ToTCG(litmus.MP(), X86NoFences)
	if out := litmus.Outcomes(ir, tcgmm.New()); !out.Contains("1:a=1", "1:b=0") {
		t.Fatal("fence-free IR mapping of MP must allow the weak outcome")
	}
	// LB needs the ld-st component of Frm (Figure 8, LB-IR).
	ir = X86ToTCG(litmus.LB(), X86Verified)
	if out := litmus.Outcomes(ir, tcgmm.New()); out.Contains("0:a=1", "1:b=1") {
		t.Fatal("verified IR mapping of LB must forbid a=b=1")
	}
}

// TestVerifiedMappingOnDependencyPrograms checks Theorem 1 on programs
// with address dependencies: the verified scheme's fences subsume the
// orderings the dependencies would have provided on Arm (and must, since
// TCG may eliminate false dependencies, §6.1).
func TestVerifiedMappingOnDependencyPrograms(t *testing.T) {
	for _, p := range []*litmus.Program{
		{
			Name: "MP+addr-x86",
			Threads: [][]litmus.Op{
				{litmus.Store{Loc: "X0", Val: 1}, litmus.Store{Loc: "Y", Val: 1}},
				{
					litmus.Load{Dst: "a", Loc: "Y"},
					litmus.LoadIdx{Dst: "b", Idx: "a", Loc0: "X0", Loc1: "X0"},
				},
			},
		},
		{
			Name: "LB+addrs-x86",
			Threads: [][]litmus.Op{
				{
					litmus.Load{Dst: "a", Loc: "X"},
					litmus.StoreIdx{Idx: "a", Loc0: "Y", Loc1: "Y", Val: 1},
				},
				{
					litmus.Load{Dst: "b", Loc: "Y"},
					litmus.StoreIdx{Idx: "b", Loc0: "X", Loc1: "X", Val: 1},
				},
			},
		},
	} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			arm := X86ToArm(p, X86Verified, ArmVerified, RMWCasal)
			v := VerifyTheorem1(p, x86tso.New(), arm, armcats.New())
			if !v.Correct() {
				t.Fatalf("verified mapping broken on %s: %v", p.Name, v.NewBehaviours)
			}
			// The no-fences "mapping" additionally DROPS the dependency
			// ordering the IR cannot express; at the Arm level the
			// dependency survives untranslated here, so the program stays
			// ordered — the interesting unsoundness is the IR-level one,
			// demonstrated by LB+addrs under tcgmm in armcats's tests.
		})
	}
}

// TestSBStaysRelaxed checks the paper's performance claim foundation: the
// verified mapping leaves x86's one relaxation (store-load) observable —
// SB's weak outcome survives translation (no fence between st and ld).
func TestSBStaysRelaxed(t *testing.T) {
	arm := X86ToArm(litmus.SB(), X86Verified, ArmVerified, RMWCasal)
	out := litmus.Outcomes(arm, armcats.New())
	if !out.Contains("0:a=0", "1:b=0") {
		t.Fatal("the verified mapping must not over-synchronize: SB weak outcome should survive")
	}
}
