package mapping

import (
	"fmt"
	"strings"

	"repro/internal/litmus"
	"repro/internal/memmodel"
	"repro/internal/obs"
)

// RouteFailure is one Theorem-1 violation (or enumeration error) for one
// program on one route.
type RouteFailure struct {
	// Program is the corpus program's base (x86-level) name.
	Program string
	// New lists the target outcomes absent from the source.
	New []litmus.Outcome
	// Err carries an enumeration failure instead, when non-empty.
	Err string
}

// RouteResult is the verification of one scheme route for one
// (source model, target model) cell over the whole corpus.
type RouteResult struct {
	// Src and Dst name the cell's models.
	Src, Dst string
	// Route is the chain's display name, Hops its length.
	Route string
	Hops  int
	// Verified reports whether every hop is a verified scheme: verified
	// routes are required to pass; unverified ones document known-bad
	// lowerings and are only reported.
	Verified bool
	// Pass counts programs with behaviour containment out of Total.
	Pass, Total int
	// Failures lists the violating programs.
	Failures []RouteFailure
}

// Cell is one (source model, target model) entry of the matrix.
type Cell struct {
	Src, Dst string
	// Routes holds every scheme route between the models' levels; empty
	// means no registered chain connects them.
	Routes []*RouteResult
}

// MatrixResult is the N×N behaviour-containment matrix: every ordered
// pair of registered models, checked through every registered scheme
// route between their levels.
type MatrixResult struct {
	// Models lists the canonical model names, row/column order.
	Models []string
	// Programs is the corpus size.
	Programs int
	// Cells is indexed [src][dst] following Models order.
	Cells [][]*Cell
	// Verifications and Violations count individual Theorem-1 checks and
	// the checks that found new behaviours (or failed to enumerate).
	Verifications, Violations int
}

// Matrix verifies behaviour containment for every registered
// (source model, scheme route, target model) combination over an
// x86-level corpus and returns the full table. Each source model's
// programs are seeded by translating the corpus along the first verified
// route from the x86 level to the model's level (identity for x86); each
// cell then checks Theorem 1 end-to-end for every registered route
// between the two levels. The scope (nil-safe) receives
// mapping.matrix.cells (one per Theorem-1 check) and
// mapping.matrix.violations counters; opts tune every enumeration.
func Matrix(corpus []*litmus.Program, models *memmodel.Registry, schemes *SchemeRegistry, sc *obs.Scope, opts ...litmus.Option) *MatrixResult {
	type row struct {
		entry memmodel.RegistryEntry
		progs []*litmus.Program // nil when the level is unreachable from x86
	}
	var rows []row
	for _, e := range models.Entries() {
		if e.Variant {
			continue
		}
		r := row{entry: e}
		if seed, ok := schemes.VerifiedRoute(memmodel.LevelX86, e.Level); ok {
			r.progs = make([]*litmus.Program, len(corpus))
			for i, p := range corpus {
				r.progs[i] = ApplyRoute(seed, p)
			}
		}
		rows = append(rows, r)
	}

	res := &MatrixResult{Programs: len(corpus)}
	for _, r := range rows {
		res.Models = append(res.Models, r.entry.Name)
	}
	cells := sc.Counter("mapping.matrix.cells")
	violations := sc.Counter("mapping.matrix.violations")

	for _, src := range rows {
		var cellRow []*Cell
		for _, dst := range rows {
			cell := &Cell{Src: src.entry.Name, Dst: dst.entry.Name}
			cellRow = append(cellRow, cell)
			if src.entry.Name == dst.entry.Name || src.progs == nil {
				continue
			}
			for _, route := range schemes.Routes(src.entry.Level, dst.entry.Level) {
				rr := &RouteResult{
					Src:      src.entry.Name,
					Dst:      dst.entry.Name,
					Route:    RouteName(route),
					Hops:     len(route),
					Verified: RouteVerified(route),
					Total:    len(src.progs),
				}
				for i, sp := range src.progs {
					tgt := ApplyRoute(route, sp)
					v := VerifyTheorem1(sp, src.entry.Model, tgt, dst.entry.Model, opts...)
					cells.Inc()
					res.Verifications++
					if v.Correct() {
						rr.Pass++
						continue
					}
					violations.Inc()
					res.Violations++
					f := RouteFailure{Program: corpus[i].Name, New: v.NewBehaviours}
					if v.Err != nil {
						f.Err = v.Err.Error()
					}
					rr.Failures = append(rr.Failures, f)
				}
				cell.Routes = append(cell.Routes, rr)
			}
		}
		res.Cells = append(res.Cells, cellRow)
	}
	return res
}

// Routes returns every route result in row-major cell order.
func (m *MatrixResult) RouteResults() []*RouteResult {
	var out []*RouteResult
	for _, row := range m.Cells {
		for _, cell := range row {
			out = append(out, cell.Routes...)
		}
	}
	return out
}

// AllVerifiedPass reports whether every verified route passed on every
// program — the matrix's acceptance condition.
func (m *MatrixResult) AllVerifiedPass() bool {
	for _, rr := range m.RouteResults() {
		if rr.Verified && len(rr.Failures) > 0 {
			return false
		}
	}
	return true
}

// KnownBadFailures returns the failing (program, route) pairs of
// unverified routes — the reproduced known-bad lowerings.
func (m *MatrixResult) KnownBadFailures() []*RouteResult {
	var out []*RouteResult
	for _, rr := range m.RouteResults() {
		if !rr.Verified && len(rr.Failures) > 0 {
			out = append(out, rr)
		}
	}
	return out
}

// cellMark renders one table cell: "≡" on the diagonal, "·" with no
// routes, "ok" when every verified route passes ("OK!" when one fails),
// with a trailing "+n!" when n unverified routes fail (expected for the
// known-bad QEMU lowerings).
func cellMark(cell *Cell, diagonal bool) string {
	if diagonal {
		return "≡"
	}
	if len(cell.Routes) == 0 {
		return "·"
	}
	verified, verifiedFail, badFail := 0, 0, 0
	for _, rr := range cell.Routes {
		if rr.Verified {
			verified++
			if len(rr.Failures) > 0 {
				verifiedFail++
			}
		} else if len(rr.Failures) > 0 {
			badFail++
		}
	}
	mark := "·"
	switch {
	case verifiedFail > 0:
		mark = "FAIL"
	case verified > 0:
		mark = "ok"
	}
	if badFail > 0 {
		mark += fmt.Sprintf("+%d!", badFail)
	}
	return mark
}

// Render formats the matrix as the containment table plus the per-route
// detail litmusctl matrix prints.
func (m *MatrixResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "N×N behaviour-containment matrix — Theorem 1 over %d x86-level corpus programs\n", m.Programs)
	sb.WriteString("(rows: source model, columns: target model; every registered scheme route per cell;\n")
	sb.WriteString(" ≡ same model, · no registered route, +n! = n known-bad routes failing as expected)\n\n")

	wide := 0
	for _, name := range m.Models {
		if len(name) > wide {
			wide = len(name)
		}
	}
	fmt.Fprintf(&sb, "  %-*s", wide, "")
	for _, name := range m.Models {
		fmt.Fprintf(&sb, "  %-*s", wide, name)
	}
	sb.WriteByte('\n')
	for i, row := range m.Cells {
		fmt.Fprintf(&sb, "  %-*s", wide, m.Models[i])
		for j, cell := range row {
			fmt.Fprintf(&sb, "  %-*s", wide, cellMark(cell, i == j))
		}
		sb.WriteByte('\n')
	}

	sb.WriteString("\nroutes:\n")
	for _, rr := range m.RouteResults() {
		kind := "verified "
		if !rr.Verified {
			kind = "known-bad"
		}
		status := "ok  "
		if len(rr.Failures) > 0 {
			status = "FAIL"
		}
		fmt.Fprintf(&sb, "  %-10s → %-10s %-55s %s %s %d/%d",
			rr.Src, rr.Dst, rr.Route, kind, status, rr.Pass, rr.Total)
		var bad []string
		for _, f := range rr.Failures {
			bad = append(bad, f.Program)
		}
		if len(bad) > 0 {
			fmt.Fprintf(&sb, " (%s)", strings.Join(bad, ", "))
		}
		sb.WriteByte('\n')
	}

	fmt.Fprintf(&sb, "\n%d routes, %d verifications, %d violations\n",
		len(m.RouteResults()), m.Verifications, m.Violations)
	if m.AllVerifiedPass() {
		sb.WriteString("all verified routes pass")
	} else {
		sb.WriteString("VERIFIED ROUTE FAILURES — Theorem 1 broken")
	}
	if n := len(m.KnownBadFailures()); n > 0 {
		fmt.Fprintf(&sb, "; %d known-bad route(s) still fail as the paper reports", n)
	}
	sb.WriteByte('\n')
	return sb.String()
}
