package mapping

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/litmus"
	"repro/internal/memmodel"
	"repro/internal/models"
	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

func mustModel(t *testing.T, name string) memmodel.Model {
	t.Helper()
	m, err := models.Default().Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// buildMatrix runs the full default matrix once per test binary.
func buildMatrix(t *testing.T) *MatrixResult {
	t.Helper()
	if matrixOnce == nil {
		sc := obs.NewScope("")
		matrixOnce = Matrix(litmus.X86Corpus(), models.Default(), DefaultSchemes(), sc,
			litmus.WithCache(litmus.DefaultCache))
		matrixScope = sc
	}
	return matrixOnce
}

var (
	matrixOnce  *MatrixResult
	matrixScope *obs.Scope
)

// TestMatrixVerifiedRoutesPass is the acceptance criterion: every
// all-verified scheme route preserves Theorem 1 on every corpus program,
// for every (source model, target model) pair it connects.
func TestMatrixVerifiedRoutesPass(t *testing.T) {
	m := buildMatrix(t)
	if !m.AllVerifiedPass() {
		for _, rr := range m.RouteResults() {
			if rr.Verified && len(rr.Failures) > 0 {
				for _, f := range rr.Failures {
					t.Errorf("%s → %s via %s: %s new=%v err=%s",
						rr.Src, rr.Dst, rr.Route, f.Program, f.New, f.Err)
				}
			}
		}
	}
}

// TestMatrixKnownBadStillFail pins the paper's translation errors inside
// the matrix, per route. Three independent bugs show up:
//   - QEMU's leading-fence x86→IR mapping leaves a load unordered with a
//     po-later failed RMW, so MPQ already fails at the IR level and on the
//     Arm routes built on that guest leg — except the rmw2+dmb lowering,
//     whose leading DMBFF happens to repair the ordering (§3.1's guest
//     half).
//   - The casal helper lowering fails MPQ only when the guest leg also
//     used QEMU's fences — Risotto's trailing Frm masks it (§3.1's host
//     half).
//   - The acquiring exclusive-pair helper reorders the RMW write with
//     po-earlier stores regardless of guest fences, so every route ending
//     in qemu-lxsx fails SBQ and SBAL (§3.2).
func TestMatrixKnownBadStillFail(t *testing.T) {
	m := buildMatrix(t)
	got := map[string][]string{}
	for _, rr := range m.KnownBadFailures() {
		var progs []string
		for _, f := range rr.Failures {
			progs = append(progs, f.Program)
		}
		got[rr.Route] = progs
	}
	want := map[string][]string{
		"x86→tcg/qemu":                                              {"MPQ"},
		"x86→tcg/qemu + tcg→arm/verified":                           {"MPQ"},
		"x86→tcg/qemu + tcg→arm/qemu-casal":                         {"MPQ"},
		"x86→tcg/qemu + tcg→arm/qemu-lxsx":                          {"MPQ", "SBQ", "SBAL"},
		"x86→tcg/verified + tcg→arm/qemu-lxsx":                      {"SBQ", "SBAL"},
		"x86→sparc/membar + sparc→tcg/verified + tcg→arm/qemu-lxsx": {"SBQ", "SBAL"},
		"sparc→tcg/verified + tcg→arm/qemu-lxsx":                    {"SBQ", "SBAL"},
		"tcg→arm/qemu-lxsx":                                         {"SBQ", "SBAL"},
	}
	if len(got) != len(want) {
		t.Errorf("known-bad failing routes:\n  got  %v\n  want %v", got, want)
	}
	for route, progs := range want {
		if strings.Join(got[route], ",") != strings.Join(progs, ",") {
			t.Errorf("route %q failures = %v, want %v", route, got[route], progs)
		}
	}
}

// TestMatrixShape pins the sweep dimensions so a silently dropped model,
// scheme or program shows up as a diff here rather than as quieter
// coverage.
func TestMatrixShape(t *testing.T) {
	m := buildMatrix(t)
	wantModels := []string{"x86-TSO", "SPARC-TSO", "IMM", "TCG-IR", "Arm-Cats"}
	if strings.Join(m.Models, ",") != strings.Join(wantModels, ",") {
		t.Errorf("models = %v, want %v", m.Models, wantModels)
	}
	if m.Programs != len(litmus.X86Corpus()) {
		t.Errorf("programs = %d, want %d", m.Programs, len(litmus.X86Corpus()))
	}
	if got, want := len(m.RouteResults()), 28; got != want {
		t.Errorf("routes = %d, want %d", got, want)
	}
	if want := len(m.RouteResults()) * m.Programs; m.Verifications != want {
		t.Errorf("verifications = %d, want routes×programs = %d", m.Verifications, want)
	}
}

// TestMatrixGolden snapshots the rendered table; refresh with -update.
func TestMatrixGolden(t *testing.T) {
	m := buildMatrix(t)
	compareGolden(t, filepath.Join("testdata", "matrix.golden"), m.Render())
}

// TestMatrixMetricNamesGolden pins the matrix's observability surface —
// the counter names the scope exports — alongside the table snapshot.
func TestMatrixMetricNamesGolden(t *testing.T) {
	buildMatrix(t)
	snap := matrixScope.Snapshot()
	compareGolden(t, filepath.Join("testdata", "matrix_metrics.golden"),
		strings.Join(snap.MetricNames(), "\n")+"\n")
	if c, ok := snap.Counters["mapping.matrix.cells"]; !ok || c == 0 {
		t.Errorf("mapping.matrix.cells = %d, %v; want non-zero", c, ok)
	}
	if c := snap.Counters["mapping.matrix.violations"]; int(c) != matrixOnce.Violations {
		t.Errorf("mapping.matrix.violations counter %d != result violations %d", c, matrixOnce.Violations)
	}
}

func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch for %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestMatrixNilScope: the matrix must run without observability wired in.
func TestMatrixNilScope(t *testing.T) {
	m := Matrix([]*litmus.Program{litmus.MP()}, models.Default(), DefaultSchemes(), nil,
		litmus.WithCache(litmus.DefaultCache))
	if m.Verifications == 0 {
		t.Fatal("nil-scope matrix did no work")
	}
}
