package mapping

import (
	"math/rand"
	"testing"

	"repro/internal/litmus"
	"repro/internal/models/armcats"
	"repro/internal/models/tcgmm"
	"repro/internal/models/x86tso"
)

// Cross-model monotonicity: for plain-access programs (no fences, no
// RMWs), the three models form a strength chain —
//
//	x86-TSO  ⊑  Armed-Cats  ⊑  TCG-IR
//
// x86 orders all but store-load pairs; Arm orders only dependencies,
// coherence and barriers; the TCG IR orders nothing at all for plain
// accesses (§5.3). So outcome sets must be nested. This property is
// checked over randomly generated programs.

// randPlainProgram builds a random 2-thread program of loads, stores and
// register-to-store dataflow over three locations.
func randPlainProgram(rng *rand.Rand) *litmus.Program {
	locs := []litmus.Loc{"X", "Y", "Z"}
	p := &litmus.Program{Name: "rand"}
	regN := 0
	for t := 0; t < 2; t++ {
		var ops []litmus.Op
		var defined []litmus.Reg
		n := 2 + rng.Intn(3)
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0, 1:
				r := litmus.Reg(string(rune('a' + regN)))
				regN++
				ops = append(ops, litmus.Load{Dst: r, Loc: locs[rng.Intn(3)]})
				defined = append(defined, r)
			case 2:
				ops = append(ops, litmus.Store{
					Loc: locs[rng.Intn(3)], Val: int64(1 + rng.Intn(3)),
				})
			case 3:
				if len(defined) == 0 {
					ops = append(ops, litmus.Store{Loc: locs[rng.Intn(3)], Val: 7})
					break
				}
				ops = append(ops, litmus.StoreReg{
					Loc: locs[rng.Intn(3)],
					Src: defined[rng.Intn(len(defined))],
				})
			}
		}
		p.Threads = append(p.Threads, ops)
	}
	return p
}

func TestModelStrengthChain(t *testing.T) {
	x86 := x86tso.New()
	arm := armcats.New()
	ir := tcgmm.New()
	nSeeds := 120
	if testing.Short() {
		nSeeds = 30
	}
	for seed := 0; seed < nSeeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		p := randPlainProgram(rng)
		outX86 := litmus.Outcomes(p, x86)
		outArm := litmus.Outcomes(p, arm)
		outIR := litmus.Outcomes(p, ir)
		if !outX86.SubsetOf(outArm) {
			t.Fatalf("seed %d: x86 outcomes ⊄ Arm outcomes; extra: %v",
				seed, outX86.Minus(outArm))
		}
		if !outArm.SubsetOf(outIR) {
			t.Fatalf("seed %d: Arm outcomes ⊄ IR outcomes; extra: %v",
				seed, outArm.Minus(outIR))
		}
		if len(outX86) == 0 {
			t.Fatalf("seed %d: empty x86 outcome set", seed)
		}
	}
}

// TestVerifiedMappingOnRandomPrograms extends Theorem 1 beyond the named
// corpus: the verified end-to-end translation of random plain programs
// introduces no behaviour.
func TestVerifiedMappingOnRandomPrograms(t *testing.T) {
	nSeeds := 60
	if testing.Short() {
		nSeeds = 15
	}
	for seed := 0; seed < nSeeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed) + 7_000))
		p := randPlainProgram(rng)
		arm := X86ToArm(p, X86Verified, ArmVerified, RMWCasal)
		v := VerifyTheorem1(p, x86tso.New(), arm, armcats.New())
		if !v.Correct() {
			t.Fatalf("seed %d: verified mapping introduced behaviours on a random program: %v\nprogram: %+v",
				seed, v.NewBehaviours, p)
		}
	}
}

// TestEnumerationDeterministic guards the enumerator's reproducibility.
func TestEnumerationDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := randPlainProgram(rng)
	a := litmus.Outcomes(p, x86tso.New())
	b := litmus.Outcomes(p, x86tso.New())
	if !a.SubsetOf(b) || !b.SubsetOf(a) {
		t.Fatal("outcome enumeration is not deterministic")
	}
}
