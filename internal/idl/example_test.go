package idl_test

import (
	"fmt"

	"repro/internal/idl"
)

// ExampleParse parses the paper's §6.2 signature example.
func ExampleParse() {
	sigs, err := idl.Parse("f64 sin(f64 v);")
	if err != nil {
		panic(err)
	}
	fmt.Println(sigs[0])
	// Output:
	// f64 sin(f64);
}
