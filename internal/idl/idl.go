// Package idl implements Risotto's Interface Definition Language (§6.2):
// C-prototype-like declarations describing the signatures of shared-library
// functions, so the dynamic host linker can marshal arguments and return
// values between the guest and host ABIs.
//
// Grammar (one declaration per line; '#' starts a comment):
//
//	decl   := type ident '(' params? ')' ';'
//	params := type (',' type)*
//	type   := 'void' | 'i64' | 'u64' | 'i32' | 'u32' | 'f64' | 'ptr' | 'buf'
//
// 'f64' values travel as their IEEE-754 bit patterns in integer registers
// (the guest ISA has no FP registers). 'ptr' is a guest address passed
// through unchanged; 'buf' is a guest address that the host-side wrapper
// receives as a byte-slice view of guest memory (its length comes from a
// paired i64/u64 parameter by the host function's own convention).
package idl

import (
	"fmt"
	"strings"
)

// Type is an IDL parameter/return type.
type Type int

// IDL types.
const (
	Void Type = iota
	I64
	U64
	I32
	U32
	F64
	Ptr
	Buf
)

var typeNames = map[string]Type{
	"void": Void, "i64": I64, "u64": U64, "i32": I32, "u32": U32,
	"f64": F64, "ptr": Ptr, "buf": Buf,
}

func (t Type) String() string {
	for n, v := range typeNames {
		if v == t {
			return n
		}
	}
	return fmt.Sprintf("type?%d", int(t))
}

// Signature describes one shared-library function.
type Signature struct {
	Name   string
	Return Type
	Params []Type
}

func (s Signature) String() string {
	var ps []string
	for _, p := range s.Params {
		ps = append(ps, p.String())
	}
	return fmt.Sprintf("%s %s(%s);", s.Return, s.Name, strings.Join(ps, ", "))
}

// Parse reads an IDL document and returns its signatures in order.
func Parse(src string) ([]Signature, error) {
	var out []Signature
	for lineNo, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		sig, err := parseDecl(line)
		if err != nil {
			return nil, fmt.Errorf("idl: line %d: %w", lineNo+1, err)
		}
		out = append(out, sig)
	}
	return out, nil
}

func parseDecl(line string) (Signature, error) {
	if !strings.HasSuffix(line, ";") {
		return Signature{}, fmt.Errorf("missing ';' in %q", line)
	}
	line = strings.TrimSpace(strings.TrimSuffix(line, ";"))
	open := strings.IndexByte(line, '(')
	closeP := strings.LastIndexByte(line, ')')
	if open < 0 || closeP < open {
		return Signature{}, fmt.Errorf("malformed declaration %q", line)
	}
	head := strings.Fields(strings.TrimSpace(line[:open]))
	if len(head) != 2 {
		return Signature{}, fmt.Errorf("expected 'type name' before '(' in %q", line)
	}
	ret, ok := typeNames[head[0]]
	if !ok {
		return Signature{}, fmt.Errorf("unknown return type %q", head[0])
	}
	name := head[1]
	if name == "" || !isIdent(name) {
		return Signature{}, fmt.Errorf("bad function name %q", name)
	}
	sig := Signature{Name: name, Return: ret}
	paramSrc := strings.TrimSpace(line[open+1 : closeP])
	if paramSrc == "" || paramSrc == "void" {
		return sig, nil
	}
	for _, p := range strings.Split(paramSrc, ",") {
		fields := strings.Fields(strings.TrimSpace(p))
		if len(fields) == 0 {
			return Signature{}, fmt.Errorf("empty parameter in %q", line)
		}
		// Parameter names are optional ("f64 v" or just "f64").
		t, ok := typeNames[fields[0]]
		if !ok || t == Void {
			return Signature{}, fmt.Errorf("unknown parameter type %q", fields[0])
		}
		if len(fields) > 2 {
			return Signature{}, fmt.Errorf("malformed parameter %q", p)
		}
		if len(fields) == 2 && !isIdent(fields[1]) {
			return Signature{}, fmt.Errorf("bad parameter name %q", fields[1])
		}
		sig.Params = append(sig.Params, t)
	}
	return sig, nil
}

func isIdent(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return s != ""
}

// Table indexes signatures by name.
type Table map[string]Signature

// ParseTable parses src into a lookup table, rejecting duplicates.
func ParseTable(src string) (Table, error) {
	sigs, err := Parse(src)
	if err != nil {
		return nil, err
	}
	t := make(Table, len(sigs))
	for _, s := range sigs {
		if _, dup := t[s.Name]; dup {
			return nil, fmt.Errorf("idl: duplicate declaration of %q", s.Name)
		}
		t[s.Name] = s
	}
	return t, nil
}
