package idl

import "testing"

func TestParseBasics(t *testing.T) {
	sigs, err := Parse(`
# math
f64 sin(f64 v);
u64 md5(buf data, u64 len);
void notify();
i64 mix(i32 a, u32 b, ptr p);
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != 4 {
		t.Fatalf("got %d signatures", len(sigs))
	}
	if sigs[0].Name != "sin" || sigs[0].Return != F64 ||
		len(sigs[0].Params) != 1 || sigs[0].Params[0] != F64 {
		t.Fatalf("sin: %+v", sigs[0])
	}
	if sigs[1].Params[0] != Buf || sigs[1].Params[1] != U64 {
		t.Fatalf("md5: %+v", sigs[1])
	}
	if sigs[2].Return != Void || len(sigs[2].Params) != 0 {
		t.Fatalf("notify: %+v", sigs[2])
	}
	if sigs[3].Params[0] != I32 || sigs[3].Params[1] != U32 || sigs[3].Params[2] != Ptr {
		t.Fatalf("mix: %+v", sigs[3])
	}
}

func TestParamNamesOptional(t *testing.T) {
	sigs, err := Parse("i64 f(i64, i64 second);")
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs[0].Params) != 2 {
		t.Fatalf("params: %+v", sigs[0])
	}
}

func TestVoidParams(t *testing.T) {
	sigs, err := Parse("i64 f(void);")
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs[0].Params) != 0 {
		t.Fatalf("f(void) should have no params: %+v", sigs[0])
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	sigs, err := Parse("\n  # just a comment\n\ni64 g(); # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != 1 || sigs[0].Name != "g" {
		t.Fatalf("sigs: %+v", sigs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"i64 f()",           // missing semicolon
		"i64 f;",            // no parens
		"mystery f();",      // unknown return type
		"i64 f(mystery x);", // unknown param type
		"i64 f(void x);",    // void param with name
		"i64 2bad();",       // bad identifier
		"i64 f(i64 a b);",   // malformed param
		"i64 ();",           // missing name
		"i64 f(i64,);",      // empty param
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestParseTable(t *testing.T) {
	tbl, err := ParseTable("i64 a();\nu64 b(i64 x);")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl) != 2 || tbl["b"].Return != U64 {
		t.Fatalf("table: %+v", tbl)
	}
	if _, err := ParseTable("i64 a();\nu64 a();"); err == nil {
		t.Fatal("duplicate declarations must error")
	}
}

func TestSignatureString(t *testing.T) {
	sigs, err := Parse("f64 sin(f64 v);")
	if err != nil {
		t.Fatal(err)
	}
	if got := sigs[0].String(); got != "f64 sin(f64);" {
		t.Fatalf("String() = %q", got)
	}
}
