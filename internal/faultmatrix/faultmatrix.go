// Package faultmatrix is the differential fault-injection driver: it runs
// a small corpus of known-answer guest workloads under every injectable
// fault and classifies each (workload, fault) cell. A cell is acceptable
// iff the degraded run either matches the fault-free result exactly (the
// runtime recovered) or halts with a well-formed structured trap; silent
// wrong answers, untyped errors, panics and hangs are failures. The litmus
// half does the same for the parallel enumerator: an injected worker panic
// must degrade to the serial outcome set, never change it.
package faultmatrix

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/guestimg"
	"repro/internal/hostlib"
	"repro/internal/isa/x86"
	"repro/internal/litmus"
	"repro/internal/memmodel"
	"repro/internal/models"
)

// Workload is one guest program with a known fault-free result.
type Workload struct {
	Name    string
	Image   *guestimg.Image
	Want    uint64
	Variant core.Variant
	// IDL and Lib, when set, enable the host linker (exercises the
	// host-call fault site).
	IDL string
	Lib *hostlib.Library
}

// Outcome classifies one matrix cell.
type Outcome int

const (
	// OK: the run completed and matched the fault-free result.
	OK Outcome = iota
	// Trapped: the run halted with a well-formed structured trap.
	Trapped
	// Bad: silent wrong result, untyped error, or a panic.
	Bad
)

var outcomeNames = []string{"ok", "trapped", "bad"}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome?%d", int(o))
}

// Result is one (workload, fault) cell of the matrix.
type Result struct {
	Workload string
	Fault    string
	Outcome  Outcome
	// Detail explains Bad outcomes and carries the trap text for Trapped.
	Detail string
	// Trap is the structured trap for Trapped cells.
	Trap *faults.Trap
	// Flushes counts flush-and-retranslate recoveries during the run.
	Flushes int
	// Quarantines and Divergences count self-healing activity (always 0
	// for cells produced by Run, which keeps healing off so injected
	// faults surface undisguised).
	Quarantines int
	Divergences int
}

// exitWith emits the guest exit syscall with the code in reg.
func exitWith(a *x86.Assembler, reg x86.Reg) {
	a.MovRR(x86.RDI, reg).
		MovRI(x86.RAX, core.GuestSysExit).
		Syscall()
}

// sumLoopWorkload stores then reloads squares in a loop; exercises decode,
// memory and step sites.
func sumLoopWorkload() (Workload, error) {
	b := guestimg.NewBuilder(0x10000, 0x40000)
	buf := b.Zeros(16 * 8)
	a := b.Asm
	a.Label("main").
		MovRI(x86.RSI, int64(buf)).
		MovRI(x86.RCX, 0).
		MovRI(x86.RAX, 0).
		Label("loop").
		Store(x86.MemIdx(x86.RSI, x86.RCX, 8, 0), x86.RCX, 8).
		Load(x86.RBX, x86.MemIdx(x86.RSI, x86.RCX, 8, 0), 8).
		AddRR(x86.RAX, x86.RBX).
		AddRI(x86.RCX, 1).
		CmpRI(x86.RCX, 16).
		Jcc(x86.CondNE, "loop")
	exitWith(a, x86.RAX)
	img, err := b.Build("main")
	if err != nil {
		return Workload{}, err
	}
	// sum 0..15
	return Workload{Name: "sum-loop", Image: img, Want: 120, Variant: core.VariantRisotto}, nil
}

// casWorkload runs a success-then-failure cmpxchg pair; exercises the
// atomic paths.
func casWorkload() (Workload, error) {
	b := guestimg.NewBuilder(0x10000, 0x40000)
	cell := b.Zeros(8)
	a := b.Asm
	a.Label("main").
		MovRI(x86.RSI, int64(cell)).
		MovRI(x86.RAX, 0).
		MovRI(x86.RBX, 7).
		CmpXchg(x86.Mem0(x86.RSI), x86.RBX, 8).
		MovRI(x86.RAX, 0).
		MovRI(x86.RBX, 9).
		CmpXchg(x86.Mem0(x86.RSI), x86.RBX, 8)
	exitWith(a, x86.RAX)
	img, err := b.Build("main")
	if err != nil {
		return Workload{}, err
	}
	// Second CAS fails and leaves the old value (7) in RAX.
	return Workload{Name: "cas", Image: img, Want: 7, Variant: core.VariantRisotto}, nil
}

// hostCallWorkload calls a host-linked import; exercises the host-call
// site.
func hostCallWorkload() (Workload, error) {
	b := guestimg.NewBuilder(0x10000, 0x40000)
	b.Import("triple")
	a := b.Asm
	a.Label("main").
		MovRI(x86.RDI, 14).
		Call("triple@plt").
		Jmp("done").
		Label("triple"). // guest fallback, never linked here
		MovRR(x86.RAX, x86.RDI).
		Ret().
		Label("done")
	exitWith(a, x86.RAX)
	img, err := b.Build("main")
	if err != nil {
		return Workload{}, err
	}
	lib := hostlib.New()
	lib.Register("triple", func(mem []byte, args []uint64) (uint64, uint64) {
		return args[0] * 3, 10
	})
	return Workload{
		Name: "host-call", Image: img, Want: 42, Variant: core.VariantRisotto,
		IDL: "i64 triple(i64 x);\n", Lib: lib,
	}, nil
}

// Workloads builds the known-answer corpus the matrix sweeps.
func Workloads() ([]Workload, error) {
	var ws []Workload
	for _, build := range []func() (Workload, error){
		sumLoopWorkload, casWorkload, hostCallWorkload,
	} {
		w, err := build()
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// Run executes one matrix cell: workload w with the named fault armed.
// Hangs are excluded by construction: every run carries a step budget and
// a wall-clock deadline, and a panic anywhere in the stack is captured
// into a Bad cell. Self-healing stays off so every injected fault's
// undisguised trap is pinned.
func Run(w Workload, faultName string) Result {
	return run(w, faultName, false)
}

// RunHealed is Run with the self-healing layer enabled (SelfHeal +
// SelfCheck): the cell is expected to *recover* — quarantine the faulting
// block, demote its tier, and still produce the fault-free result.
func RunHealed(w Workload, faultName string) Result {
	return run(w, faultName, true)
}

func run(w Workload, faultName string, heal bool) (res Result) {
	res = Result{Workload: w.Name, Fault: faultName}
	defer func() {
		if r := recover(); r != nil {
			res.Outcome = Bad
			res.Detail = fmt.Sprintf("panic: %v", r)
		}
	}()

	in := faults.NewInjector(1)
	if faultName != "" {
		spec, err := faults.ParseSpec(faultName)
		if err != nil {
			res.Outcome = Bad
			res.Detail = err.Error()
			return res
		}
		spec.Arm(in)
	}

	rt, err := core.New(w.Image,
		core.WithVariant(w.Variant),
		core.WithHostLinker(w.IDL, w.Lib),
		core.WithStepBudget(5_000_000),
		core.WithDeadline(30*time.Second),
		core.WithFaults(in),
		core.WithSelfHeal(heal),
		core.WithSelfCheck(heal),
	)
	if err != nil {
		res.Outcome = Bad
		res.Detail = fmt.Sprintf("runtime construction: %v", err)
		return res
	}
	code, err := rt.Run()
	st := rt.Stats()
	res.Flushes = int(st.CacheFlushes)
	res.Quarantines = int(st.Quarantines)
	res.Divergences = int(st.Divergences)
	if err == nil {
		if code != w.Want {
			res.Outcome = Bad
			res.Detail = fmt.Sprintf("silent wrong result: exit %d, want %d", code, w.Want)
			return res
		}
		res.Outcome = OK
		return res
	}
	tr, ok := faults.As(err)
	if !ok {
		res.Outcome = Bad
		res.Detail = fmt.Sprintf("untyped error: %v", err)
		return res
	}
	if tr.Error() == "" {
		res.Outcome = Bad
		res.Detail = "trap renders empty"
		return res
	}
	res.Outcome = Trapped
	res.Trap = tr
	res.Detail = tr.Error()
	return res
}

// Matrix sweeps every workload under every injectable fault (plus a
// fault-free control column, named "") and returns all cells.
func Matrix() ([]Result, error) {
	ws, err := Workloads()
	if err != nil {
		return nil, err
	}
	names := append([]string{""}, faults.SpecNames()...)
	var out []Result
	for _, w := range ws {
		for _, n := range names {
			out = append(out, Run(w, n))
		}
	}
	return out, nil
}

// HealMatrix sweeps every workload under injected translation corruption
// with the self-healing layer on: each cell must detect the miscompile
// (selfcheck divergence or executed marker), quarantine the block, and
// still finish with the fault-free result.
func HealMatrix() ([]Result, error) {
	ws, err := Workloads()
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, w := range ws {
		out = append(out, RunHealed(w, "miscompile"))
	}
	return out, nil
}

// RunLitmusNamed is RunLitmus with the model resolved by name through the
// default registry; an unknown name is itself a Bad cell (the matrix must
// not silently skip a misspelled model).
func RunLitmusNamed(p *litmus.Program, model string) Result {
	m, err := models.Default().Lookup(model)
	if err != nil {
		return Result{Workload: "litmus:" + p.Name, Fault: "shard-panic",
			Outcome: Bad, Detail: err.Error()}
	}
	return RunLitmus(p, m)
}

// RunLitmus checks one litmus differential cell: enumeration with an
// injected worker-shard panic must equal the serial reference set.
func RunLitmus(p *litmus.Program, m memmodel.Model) Result {
	res := Result{Workload: "litmus:" + p.Name, Fault: "shard-panic"}
	in := faults.NewInjector(1)
	in.Arm(faults.SiteLitmusShard, 1, faults.TrapWorkerPanic)

	want := litmus.Outcomes(p, m)
	got, err := litmus.Enumerate(p, m, litmus.WithWorkers(4), litmus.WithInjector(in))
	if err != nil {
		tr, ok := faults.As(err)
		if !ok {
			res.Outcome = Bad
			res.Detail = fmt.Sprintf("untyped error: %v", err)
			return res
		}
		res.Outcome = Trapped
		res.Trap = tr
		res.Detail = tr.Error()
		return res
	}
	ws, gs := want.Sorted(), got.Sorted()
	if len(ws) != len(gs) {
		res.Outcome = Bad
		res.Detail = fmt.Sprintf("degraded set has %d outcomes, serial %d", len(gs), len(ws))
		return res
	}
	for i := range ws {
		if ws[i] != gs[i] {
			res.Outcome = Bad
			res.Detail = fmt.Sprintf("outcome[%d] = %q, serial %q", i, gs[i], ws[i])
			return res
		}
	}
	res.Outcome = OK
	return res
}
