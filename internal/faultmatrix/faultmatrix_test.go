package faultmatrix

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/litmus"
)

// wantKind maps each injectable fault to the trap kind a halted run must
// report. Faults absent from the map must not halt the workload at all:
// cache-exhaust is recovered by flush-and-retranslate, and shard-panic's
// site does not exist in the DBT stack.
var wantKind = map[string]faults.TrapKind{
	"decode":      faults.TrapDecode,
	"unmapped":    faults.TrapUnmapped,
	"misaligned":  faults.TrapMisaligned,
	"step-budget": faults.TrapBudget,
	"host-call":   faults.TrapHostCall,
	"miscompile":  faults.TrapMiscompile,
}

// TestFaultMatrixDifferential sweeps every workload under every fault and
// checks each cell: either the degraded run equals the fault-free one, or
// it halts with the right structured trap. No cell may be Bad (silent
// wrong answer, untyped error, panic) and no run may hang (budgets are
// armed by the driver).
func TestFaultMatrixDifferential(t *testing.T) {
	cells, err := Matrix()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		label := c.Workload + "/" + c.Fault
		if c.Outcome == Bad {
			t.Errorf("%s: %s", label, c.Detail)
			continue
		}
		switch c.Fault {
		case "":
			if c.Outcome != OK {
				t.Errorf("%s: control run did not complete: %s", label, c.Detail)
			}
		case "cache-exhaust":
			// Injected exhaustion must be absorbed by a flush, not kill
			// the guest.
			if c.Outcome != OK {
				t.Errorf("%s: exhaustion not recovered: %s", label, c.Detail)
			} else if c.Flushes == 0 {
				t.Errorf("%s: recovered without any flush recorded", label)
			}
		case "shard-panic", "cache-corrupt", "job-panic":
			// No such site in the single-run DBT stack (litmus shards,
			// the daemon's persistent cache and its job workers); the
			// run must be unaffected.
			if c.Outcome != OK {
				t.Errorf("%s: inert fault changed the run: %s", label, c.Detail)
			}
		case "host-call":
			// Only the linker workload has the site; others run clean.
			if c.Workload == "host-call" {
				if c.Outcome != Trapped || c.Trap.Kind != faults.TrapHostCall {
					t.Errorf("%s: want host-call trap, got %v (%s)", label, c.Outcome, c.Detail)
				}
			} else if c.Outcome != OK {
				t.Errorf("%s: inert fault changed the run: %s", label, c.Detail)
			}
		default:
			want := wantKind[c.Fault]
			if c.Outcome != Trapped {
				t.Errorf("%s: want trap, got %v (%s)", label, c.Outcome, c.Detail)
				continue
			}
			if c.Trap.Kind != want {
				t.Errorf("%s: trap kind = %v, want %v: %s", label, c.Trap.Kind, want, c.Detail)
			}
			if !c.Trap.Injected {
				t.Errorf("%s: trap not marked injected: %s", label, c.Detail)
			}
		}
	}
}

// TestFaultMatrixHealed is the recovery half of the miscompile story: the
// same injected translation corruption that traps every workload in the
// plain matrix must, with the self-healing layer on, be detected,
// quarantined and survived — fault-free result, at least one quarantine,
// and a recorded detection (selfcheck divergence or an executed marker
// healed by quarantine).
func TestFaultMatrixHealed(t *testing.T) {
	cells, err := HealMatrix()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		label := c.Workload + "/" + c.Fault + "(healed)"
		if c.Outcome != OK {
			t.Errorf("%s: corruption not recovered: %v (%s)", label, c.Outcome, c.Detail)
			continue
		}
		if c.Quarantines == 0 {
			t.Errorf("%s: recovered without quarantining any block", label)
		}
	}
}

// TestFaultMatrixLitmus checks the enumerator half: for several programs
// and models, an injected worker-shard panic must leave the outcome set
// exactly equal to the serial reference.
func TestFaultMatrixLitmus(t *testing.T) {
	for _, p := range litmus.X86Corpus() {
		for _, cell := range []Result{
			RunLitmusNamed(p, "x86-TSO"),
			RunLitmusNamed(p, "arm"),
		} {
			if cell.Outcome != OK {
				t.Errorf("%s under injected shard panic: %v (%s)",
					cell.Workload, cell.Outcome, cell.Detail)
			}
		}
	}
}
