// Package opcheck bridges the repository's two views of weak memory: it
// compiles litmus programs to native Arm code, executes them on the
// simulated machine's operational weak-memory mode across many seeds, and
// checks that every outcome actually observed is admitted by the
// Armed-Cats axiomatic model — the soundness direction of the
// operational/axiomatic correspondence. (Completeness cannot hold: the
// store-buffer machine deliberately models only the store-side
// relaxations; see internal/machine/weak.go.)
package opcheck

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/guestimg"
	"repro/internal/isa/arm"
	"repro/internal/litmus"
	"repro/internal/machine"
	"repro/internal/memmodel"
	"repro/internal/models"
)

// ErrUnsupported marks programs outside the compilable subset (RMWs,
// conditionals, indexed accesses, exotic store attributes). Campaign
// drivers distinguish "this test cannot run operationally" (errors.Is
// ErrUnsupported → skip) from a genuine compile/execution failure.
var ErrUnsupported = errors.New("opcheck: unsupported operation")

// Layout constants for compiled litmus programs.
const (
	textBase   = 0x1000
	locBase    = 0x8000 // shared locations, 8 bytes each
	resultBase = 0x9000 // per-thread result slots
	memSize    = 1 << 16
)

// Compiled is a litmus program lowered to native Arm threads.
type Compiled struct {
	img     *guestimg.Image
	entries []uint64
	// regSlots maps (thread, register) to its result slot address.
	regSlots map[string]uint64
	locAddrs map[litmus.Loc]uint64
	program  *litmus.Program
}

// Compile lowers a plain litmus program (stores, register stores, loads,
// fences, movs — no RMWs or conditionals) to one Arm code sequence per
// thread. Loaded registers are written to result slots before the thread
// halts.
func Compile(p *litmus.Program) (*Compiled, error) {
	c := &Compiled{
		regSlots: make(map[string]uint64),
		locAddrs: make(map[litmus.Loc]uint64),
		program:  p,
	}
	for i, loc := range p.Locations() {
		c.locAddrs[loc] = locBase + uint64(i)*8
	}

	a := arm.NewAssembler()
	slotCur := uint64(resultBase)
	// Register allocation per thread: litmus regs → X9..X20, value
	// scratch X1, address scratch X2.
	for t, ops := range p.Threads {
		label := fmt.Sprintf("t%d", t)
		a.Label(label)
		regMap := make(map[litmus.Reg]arm.Reg)
		nextReg := arm.X9
		allocReg := func(r litmus.Reg) (arm.Reg, error) {
			if hw, ok := regMap[r]; ok {
				return hw, nil
			}
			if nextReg > arm.X20 {
				return 0, fmt.Errorf("opcheck: thread %d: too many registers", t)
			}
			hw := nextReg
			nextReg++
			regMap[r] = hw
			key := fmt.Sprintf("%d:%s", t, r)
			c.regSlots[key] = slotCur
			slotCur += 8
			return hw, nil
		}

		for _, op := range ops {
			switch o := op.(type) {
			case litmus.Store:
				if o.Acq || o.AcqPC || o.SC {
					return nil, fmt.Errorf("%w: store attrs on thread %d", ErrUnsupported, t)
				}
				a.MovImm(arm.X2, c.locAddrs[o.Loc])
				a.MovImm(arm.X1, uint64(o.Val))
				if o.Rel {
					a.Stlr(arm.X1, arm.X2)
				} else {
					a.Str(arm.X1, arm.X2, 0, 8)
				}
			case litmus.StoreReg:
				hw, ok := regMap[o.Src]
				if !ok {
					return nil, fmt.Errorf("opcheck: thread %d stores undefined reg %s", t, o.Src)
				}
				a.MovImm(arm.X2, c.locAddrs[o.Loc])
				if o.Rel {
					a.Stlr(hw, arm.X2)
				} else {
					a.Str(hw, arm.X2, 0, 8)
				}
			case litmus.Load:
				hw, err := allocReg(o.Dst)
				if err != nil {
					return nil, err
				}
				a.MovImm(arm.X2, c.locAddrs[o.Loc])
				switch {
				case o.Acq:
					a.Ldar(hw, arm.X2)
				case o.AcqPC:
					a.Raw(arm.Inst{Op: arm.LDAPR, Rd: hw, Rn: arm.X2, Size: 8})
				default:
					a.Ldr(hw, arm.X2, 0, 8)
				}
			case litmus.Fence:
				switch o.K {
				case memmodel.FenceDMBFF:
					a.Dmb(arm.BarrierFull)
				case memmodel.FenceDMBLD:
					a.Dmb(arm.BarrierLoad)
				case memmodel.FenceDMBST:
					a.Dmb(arm.BarrierStore)
				default:
					return nil, fmt.Errorf("%w: fence %v is not an Arm fence", ErrUnsupported, o.K)
				}
			case litmus.MovImm:
				hw, err := allocReg(o.Dst)
				if err != nil {
					return nil, err
				}
				a.MovImm(hw, uint64(o.Val))
			default:
				return nil, fmt.Errorf("%w: %T", ErrUnsupported, op)
			}
		}
		// Publish loaded registers and halt.
		for r, hw := range regMap {
			a.MovImm(arm.X2, c.regSlots[fmt.Sprintf("%d:%s", t, r)])
			a.Str(hw, arm.X2, 0, 8)
		}
		// Busy-wait a little so buffered stores drain on the random
		// schedule rather than only at the synchronizing halt.
		spin := fmt.Sprintf("t%dspin", t)
		a.MovImm(arm.X3, 0).
			Label(spin).
			AddI(arm.X3, arm.X3, 1).
			CmpI(arm.X3, 48).
			BCondLabel(arm.NE, spin).
			Hlt()
	}

	code, syms, err := a.Assemble(textBase)
	if err != nil {
		return nil, err
	}
	c.img = &guestimg.Image{Segments: []guestimg.Segment{{Addr: textBase, Data: code}}, Symbols: syms}
	for t := range p.Threads {
		c.entries = append(c.entries, syms[fmt.Sprintf("t%d", t)])
	}
	return c, nil
}

// RunSeed executes the compiled program once in weak mode and returns the
// outcome in the canonical litmus key format (registers then memory).
func (c *Compiled) RunSeed(seed int64, quantum int) (litmus.Outcome, error) {
	m := machine.New(memSize)
	if err := c.img.Load(m.Mem); err != nil {
		return "", err
	}
	m.EnableWeakMemory(seed, 48)
	for t, entry := range c.entries {
		var cpu *machine.CPU
		if t == 0 {
			cpu = m.CPUs[0]
		} else {
			cpu = m.AddCPU()
		}
		cpu.PC = entry
	}
	if err := m.RunAll(quantum, 1_000_000); err != nil {
		return "", err
	}
	if err := m.FlushAllWeak(); err != nil {
		return "", err
	}

	var parts []string
	keys := make([]string, 0, len(c.regSlots))
	for k := range c.regSlots {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		// Sort by thread then register name, matching outcomeOf's order.
		return keys[i] < keys[j]
	})
	for _, k := range keys {
		v, err := m.ReadMem(c.regSlots[k], 8)
		if err != nil {
			return "", err
		}
		parts = append(parts, fmt.Sprintf("%s=%d", k, v))
	}
	locs := c.program.Locations()
	for _, loc := range locs {
		v, err := m.ReadMem(c.locAddrs[loc], 8)
		if err != nil {
			return "", err
		}
		parts = append(parts, fmt.Sprintf("%s=%d", loc, v))
	}
	return litmus.Outcome(strings.Join(parts, " ")), nil
}

// Observe runs seeds 0..n-1 over a few quanta and collects the distinct
// observed outcomes.
func (c *Compiled) Observe(n int) (litmus.OutcomeSet, error) {
	out := make(litmus.OutcomeSet)
	for _, q := range []int{1, 2, 8} {
		for seed := 0; seed < n; seed++ {
			o, err := c.RunSeed(int64(seed), q)
			if err != nil {
				return nil, err
			}
			out[o] = true
		}
	}
	return out, nil
}

// CheckSoundNamed is CheckSound with the model resolved by name through
// the default registry, so drivers can take a -model flag without knowing
// any concrete model package.
func CheckSoundNamed(p *litmus.Program, model string, seeds int, opts ...litmus.Option) ([]litmus.Outcome, error) {
	m, err := models.Default().Lookup(model)
	if err != nil {
		return nil, err
	}
	return CheckSound(p, m, seeds, opts...)
}

// CheckSound verifies that every operationally observed outcome of p is
// admitted by model m, returning the offending outcomes (empty = sound).
// The admitted set is enumerated through the process-wide cache by
// default; extra litmus options append after it (last wins), so campaign
// drivers can substitute a bounded per-test cache.
func CheckSound(p *litmus.Program, m memmodel.Model, seeds int, opts ...litmus.Option) ([]litmus.Outcome, error) {
	c, err := Compile(p)
	if err != nil {
		return nil, err
	}
	observed, err := c.Observe(seeds)
	if err != nil {
		return nil, err
	}
	all := append([]litmus.Option{litmus.WithCache(litmus.DefaultCache)}, opts...)
	admitted, err := litmus.Enumerate(p, m, all...)
	if err != nil {
		return nil, fmt.Errorf("opcheck: enumerating %q under %s: %w", p.Name, m.Name(), err)
	}
	var bad []litmus.Outcome
	for o := range observed {
		if !admitted[o] {
			bad = append(bad, o)
		}
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
	return bad, nil
}
