// Package opcheck bridges the repository's two views of weak memory: it
// compiles litmus programs to native Arm code, executes them on the
// simulated machine's operational weak-memory mode across many seeds, and
// checks that every outcome actually observed is admitted by the
// Armed-Cats axiomatic model — the soundness direction of the
// operational/axiomatic correspondence. (Completeness against the broad
// architectural models cannot hold: the store-buffer machine deliberately
// models only the store-side relaxations. internal/models/opref is the
// exact axiomatic twin of the machine, and internal/explore measures
// two-sided coverage against it over this package's compiler.)
package opcheck

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/guestimg"
	"repro/internal/isa/arm"
	"repro/internal/litmus"
	"repro/internal/machine"
	"repro/internal/memmodel"
	"repro/internal/models"
)

// ErrUnsupported marks programs outside the compilable subset (exotic
// access attributes, out-of-range immediates). Campaign drivers
// distinguish "this test cannot run operationally" (errors.Is
// ErrUnsupported → skip) from a genuine compile/execution failure.
var ErrUnsupported = errors.New("opcheck: unsupported operation")

// Layout constants for compiled litmus programs.
const (
	textBase   = 0x1000
	locBase    = 0x8000 // shared locations, 8 bytes each
	resultBase = 0x9000 // per-thread result slots
	maskBase   = 0xA000 // per-thread executed-register masks
	memSize    = 1 << 16
)

// maxImm12 bounds the immediates CmpI/ORRI can encode.
const maxImm12 = 0xFFF

// Compiled is a litmus program lowered to native Arm threads.
type Compiled struct {
	img     *guestimg.Image
	entries []uint64
	// regSlots maps (thread, register) to its result slot address;
	// regBits maps it to its bit in the thread's executed mask.
	regSlots map[string]uint64
	regBits  map[string]int
	locAddrs map[litmus.Loc]uint64
	program  *litmus.Program
}

// Program returns the litmus program this was compiled from.
func (c *Compiled) Program() *litmus.Program { return c.program }

func maskAddr(t int) uint64 { return maskBase + uint64(t)*8 }

// threadCompiler carries the per-thread lowering state.
//
// Register plan: litmus registers get X9..X20; X1 is the value scratch,
// X2 the address scratch, X3 the epilogue spin counter, X4 the
// executed-register mask, X5..X8 CAS/index temporaries. The mask mirrors
// litmus.OutcomeOf exactly: a register appears in the outcome iff the
// statement that assigns it actually executed (an If body not taken
// leaves its registers out), so each assignment ORs the register's bit
// into X4 and the epilogue publishes the mask beside the result slots.
type threadCompiler struct {
	c       *Compiled
	a       *arm.Assembler
	t       int
	regMap  map[litmus.Reg]arm.Reg
	regKeys []string
	nextReg arm.Reg
	labels  int
	slotCur *uint64
}

func (tc *threadCompiler) newLabel() string {
	tc.labels++
	return fmt.Sprintf("t%dl%d", tc.t, tc.labels)
}

func (tc *threadCompiler) allocReg(r litmus.Reg) (arm.Reg, error) {
	if hw, ok := tc.regMap[r]; ok {
		return hw, nil
	}
	if tc.nextReg > arm.X20 {
		return 0, fmt.Errorf("opcheck: thread %d: too many registers", tc.t)
	}
	hw := tc.nextReg
	tc.nextReg++
	tc.regMap[r] = hw
	key := fmt.Sprintf("%d:%s", tc.t, r)
	tc.regKeys = append(tc.regKeys, key)
	tc.c.regSlots[key] = *tc.slotCur
	tc.c.regBits[key] = int(hw - arm.X9)
	*tc.slotCur += 8
	return hw, nil
}

// markAssigned records into the executed mask that hw's litmus register
// was assigned on this path.
func (tc *threadCompiler) markAssigned(hw arm.Reg) {
	tc.a.Raw(arm.Inst{Op: arm.ORRI, Rd: arm.X4, Rn: arm.X4, Imm: 1 << (hw - arm.X9)})
}

// selectLoc materializes Loc0/Loc1 chosen by the low bit of idx into X2.
func (tc *threadCompiler) selectLoc(idx arm.Reg, loc0, loc1 litmus.Loc) {
	join := tc.newLabel()
	tc.a.AndI(arm.X5, idx, 1)
	tc.a.MovImm(arm.X2, tc.c.locAddrs[loc0])
	tc.a.CbzLabel(arm.X5, join)
	tc.a.MovImm(arm.X2, tc.c.locAddrs[loc1])
	tc.a.Label(join)
}

func (tc *threadCompiler) compileOps(ops []litmus.Op) error {
	a, t := tc.a, tc.t
	for _, op := range ops {
		switch o := op.(type) {
		case litmus.Store:
			if o.Acq || o.AcqPC || o.SC {
				return fmt.Errorf("%w: store attrs on thread %d", ErrUnsupported, t)
			}
			a.MovImm(arm.X2, tc.c.locAddrs[o.Loc])
			a.MovImm(arm.X1, uint64(o.Val))
			if o.Rel {
				a.Stlr(arm.X1, arm.X2)
			} else {
				a.Str(arm.X1, arm.X2, 0, 8)
			}
		case litmus.StoreReg:
			hw, ok := tc.regMap[o.Src]
			if !ok {
				return fmt.Errorf("opcheck: thread %d stores undefined reg %s", t, o.Src)
			}
			if o.Acq || o.AcqPC || o.SC {
				return fmt.Errorf("%w: store attrs on thread %d", ErrUnsupported, t)
			}
			a.MovImm(arm.X2, tc.c.locAddrs[o.Loc])
			if o.Rel {
				a.Stlr(hw, arm.X2)
			} else {
				a.Str(hw, arm.X2, 0, 8)
			}
		case litmus.Load:
			if o.Rel || o.SC {
				return fmt.Errorf("%w: load attrs on thread %d", ErrUnsupported, t)
			}
			hw, err := tc.allocReg(o.Dst)
			if err != nil {
				return err
			}
			a.MovImm(arm.X2, tc.c.locAddrs[o.Loc])
			tc.emitLoad(hw, o.Attr)
			tc.markAssigned(hw)
		case litmus.LoadIdx:
			if o.Rel || o.SC {
				return fmt.Errorf("%w: load attrs on thread %d", ErrUnsupported, t)
			}
			hwIdx, ok := tc.regMap[o.Idx]
			if !ok {
				return fmt.Errorf("opcheck: thread %d indexes undefined reg %s", t, o.Idx)
			}
			hw, err := tc.allocReg(o.Dst)
			if err != nil {
				return err
			}
			tc.selectLoc(hwIdx, o.Loc0, o.Loc1)
			tc.emitLoad(hw, o.Attr)
			tc.markAssigned(hw)
		case litmus.StoreIdx:
			if o.Acq || o.AcqPC || o.SC {
				return fmt.Errorf("%w: store attrs on thread %d", ErrUnsupported, t)
			}
			hwIdx, ok := tc.regMap[o.Idx]
			if !ok {
				return fmt.Errorf("opcheck: thread %d indexes undefined reg %s", t, o.Idx)
			}
			tc.selectLoc(hwIdx, o.Loc0, o.Loc1)
			a.MovImm(arm.X1, uint64(o.Val))
			if o.Rel {
				a.Stlr(arm.X1, arm.X2)
			} else {
				a.Str(arm.X1, arm.X2, 0, 8)
			}
		case litmus.CAS:
			if err := tc.compileCAS(o); err != nil {
				return err
			}
		case litmus.Fence:
			// The shared StoreFlush classification keeps compiler, machine
			// and op-ref model agreeing on which fences drain the buffer:
			// store-side fences lower to DMB ISH(ST), pure load-side ones
			// to DMB ISHLD (an operational no-op — loads are in order).
			switch {
			case o.K == memmodel.FenceDMBFF:
				a.Dmb(arm.BarrierFull)
			case o.K == memmodel.FenceDMBLD:
				a.Dmb(arm.BarrierLoad)
			case o.K == memmodel.FenceDMBST:
				a.Dmb(arm.BarrierStore)
			case o.K.StoreFlush():
				a.Dmb(arm.BarrierFull)
			default:
				a.Dmb(arm.BarrierLoad)
			}
		case litmus.MovImm:
			hw, err := tc.allocReg(o.Dst)
			if err != nil {
				return err
			}
			a.MovImm(hw, uint64(o.Val))
			tc.markAssigned(hw)
		case litmus.If:
			hw, ok := tc.regMap[o.Reg]
			if !ok {
				return fmt.Errorf("opcheck: thread %d branches on undefined reg %s", t, o.Reg)
			}
			if o.Val < 0 || o.Val > maxImm12 {
				return fmt.Errorf("%w: If immediate %d", ErrUnsupported, o.Val)
			}
			skip := tc.newLabel()
			a.CmpI(hw, o.Val)
			// Branch around the body when the condition is false.
			cond := arm.EQ
			if o.Eq {
				cond = arm.NE
			}
			a.BCondLabel(cond, skip)
			if err := tc.compileOps(o.Body); err != nil {
				return err
			}
			a.Label(skip)
		default:
			return fmt.Errorf("%w: %T", ErrUnsupported, op)
		}
	}
	return nil
}

// emitLoad loads [X2] into hw with the access's acquire flavour.
func (tc *threadCompiler) emitLoad(hw arm.Reg, attr litmus.Attr) {
	switch {
	case attr.Acq:
		tc.a.Ldar(hw, arm.X2)
	case attr.AcqPC:
		tc.a.Raw(arm.Inst{Op: arm.LDAPR, Rd: hw, Rn: arm.X2, Size: 8})
	default:
		tc.a.Ldr(hw, arm.X2, 0, 8)
	}
}

// compileCAS lowers a litmus CAS: the amo class to a single CAS/CASAL,
// the lxsx class to a load/store-exclusive retry loop — mirroring the two
// RMW families of §2.4. X5 carries expect-in/old-out, X6 the new value,
// X7 the comparison copy, X8 the exclusive status.
func (tc *threadCompiler) compileCAS(o litmus.CAS) error {
	a := tc.a
	a.MovImm(arm.X2, tc.c.locAddrs[o.Loc])
	a.MovImm(arm.X5, uint64(o.Expect))
	a.MovImm(arm.X6, uint64(o.New))
	switch o.Class {
	case memmodel.RMWLxSx:
		retry, done := tc.newLabel(), tc.newLabel()
		a.Mov(arm.X7, arm.X5)
		a.Label(retry)
		ld := arm.LDXR
		if o.Acq || o.AcqPC || o.SC {
			ld = arm.LDAXR
		}
		a.Raw(arm.Inst{Op: ld, Rd: arm.X5, Rn: arm.X2, Size: 8})
		a.Cmp(arm.X5, arm.X7)
		a.BCondLabel(arm.NE, done)
		st := arm.STXR
		if o.Rel || o.SC {
			st = arm.STLXR
		}
		a.Raw(arm.Inst{Op: st, Rd: arm.X8, Rm: arm.X6, Rn: arm.X2, Size: 8})
		a.CbnzLabel(arm.X8, retry)
		a.Label(done)
	default: // amo (single-instruction CAS), the RMW1 family
		op := arm.CAS
		if o.Acq || o.AcqPC || o.Rel || o.SC {
			op = arm.CASAL
		}
		a.Raw(arm.Inst{Op: op, Rd: arm.X5, Rm: arm.X6, Rn: arm.X2, Size: 8})
	}
	if o.Dst != "" {
		hw, err := tc.allocReg(o.Dst)
		if err != nil {
			return err
		}
		a.Mov(hw, arm.X5)
		tc.markAssigned(hw)
	}
	return nil
}

// Compile lowers a litmus program to one Arm code sequence per thread.
// Loaded registers are written to result slots — and the executed-register
// mask to the thread's mask slot — before the thread halts.
func Compile(p *litmus.Program) (*Compiled, error) {
	c := &Compiled{
		regSlots: make(map[string]uint64),
		regBits:  make(map[string]int),
		locAddrs: make(map[litmus.Loc]uint64),
		program:  p,
	}
	for i, loc := range p.Locations() {
		c.locAddrs[loc] = locBase + uint64(i)*8
	}

	a := arm.NewAssembler()
	slotCur := uint64(resultBase)
	for t, ops := range p.Threads {
		label := fmt.Sprintf("t%d", t)
		a.Label(label)
		tc := &threadCompiler{
			c: c, a: a, t: t,
			regMap:  make(map[litmus.Reg]arm.Reg),
			nextReg: arm.X9,
			slotCur: &slotCur,
		}
		a.MovImm(arm.X4, 0)
		if err := tc.compileOps(ops); err != nil {
			return nil, err
		}
		// Publish loaded registers in sorted key order (determinism: the
		// instruction stream must be a pure function of the program, or
		// recorded exploration traces would not replay across processes),
		// then the executed mask, and halt.
		keys := append([]string(nil), tc.regKeys...)
		sort.Strings(keys)
		for _, key := range keys {
			r := litmus.Reg(key[strings.IndexByte(key, ':')+1:])
			a.MovImm(arm.X2, c.regSlots[key])
			a.Str(tc.regMap[r], arm.X2, 0, 8)
		}
		a.MovImm(arm.X2, maskAddr(t))
		a.Str(arm.X4, arm.X2, 0, 8)
		// Busy-wait a little so buffered stores drain on the random
		// schedule rather than only at the synchronizing halt.
		spin := fmt.Sprintf("t%dspin", t)
		a.MovImm(arm.X3, 0).
			Label(spin).
			AddI(arm.X3, arm.X3, 1).
			CmpI(arm.X3, 48).
			BCondLabel(arm.NE, spin).
			Hlt()
	}

	code, syms, err := a.Assemble(textBase)
	if err != nil {
		return nil, err
	}
	c.img = &guestimg.Image{Segments: []guestimg.Segment{{Addr: textBase, Data: code}}, Symbols: syms}
	for t := range p.Threads {
		c.entries = append(c.entries, syms[fmt.Sprintf("t%d", t)])
	}
	return c, nil
}

// NewMachine builds a fresh weak-mode machine with the program loaded and
// one CPU per thread parked at its entry. The chooser drives the drain
// (and optionally scheduling) nondeterminism; nil disables automatic
// drains entirely, the regime exploration drivers use.
func (c *Compiled) NewMachine(ch machine.Chooser) (*machine.Machine, error) {
	m := machine.New(memSize)
	if err := c.img.Load(m.Mem); err != nil {
		return nil, err
	}
	m.EnableWeakMode(ch)
	for t, entry := range c.entries {
		cpu := m.CPUs[0]
		if t > 0 {
			cpu = m.AddCPU()
		}
		cpu.PC = entry
	}
	return m, nil
}

// Outcome renders the machine's final state in the canonical litmus key
// format (registers then memory). Callers must have drained the store
// buffers (FlushAllWeak) first. Registers whose assignment did not execute
// (untaken If bodies) are excluded via the per-thread executed masks,
// matching litmus.OutcomeOf.
func (c *Compiled) Outcome(m *machine.Machine) (litmus.Outcome, error) {
	masks := make([]uint64, len(c.program.Threads))
	for t := range masks {
		v, err := m.ReadMem(maskAddr(t), 8)
		if err != nil {
			return "", err
		}
		masks[t] = v
	}
	keys := make([]string, 0, len(c.regSlots))
	for k := range c.regSlots {
		keys = append(keys, k)
	}
	// Sort by thread then register name, matching outcomeOf's order.
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		t, err := strconv.Atoi(k[:strings.IndexByte(k, ':')])
		if err != nil {
			return "", err
		}
		if masks[t]&(1<<c.regBits[k]) == 0 {
			continue
		}
		v, err := m.ReadMem(c.regSlots[k], 8)
		if err != nil {
			return "", err
		}
		parts = append(parts, fmt.Sprintf("%s=%d", k, v))
	}
	for _, loc := range c.program.Locations() {
		v, err := m.ReadMem(c.locAddrs[loc], 8)
		if err != nil {
			return "", err
		}
		parts = append(parts, fmt.Sprintf("%s=%d", loc, v))
	}
	return litmus.Outcome(strings.Join(parts, " ")), nil
}

// RunSeed executes the compiled program once in weak mode and returns the
// outcome in the canonical litmus key format (registers then memory).
func (c *Compiled) RunSeed(seed int64, quantum int) (litmus.Outcome, error) {
	m, err := c.NewMachine(machine.NewRandomChooser(seed, 48))
	if err != nil {
		return "", err
	}
	if err := m.RunAll(quantum, 1_000_000); err != nil {
		return "", err
	}
	if err := m.FlushAllWeak(); err != nil {
		return "", err
	}
	return c.Outcome(m)
}

// Observe runs seeds 0..n-1 over a few quanta and collects the distinct
// observed outcomes.
func (c *Compiled) Observe(n int) (litmus.OutcomeSet, error) {
	out := make(litmus.OutcomeSet)
	for _, q := range []int{1, 2, 8} {
		for seed := 0; seed < n; seed++ {
			o, err := c.RunSeed(int64(seed), q)
			if err != nil {
				return nil, err
			}
			out[o] = true
		}
	}
	return out, nil
}

// CheckSoundNamed is CheckSound with the model resolved by name through
// the default registry, so drivers can take a -model flag without knowing
// any concrete model package.
func CheckSoundNamed(p *litmus.Program, model string, seeds int, opts ...litmus.Option) ([]litmus.Outcome, error) {
	m, err := models.Default().Lookup(model)
	if err != nil {
		return nil, err
	}
	return CheckSound(p, m, seeds, opts...)
}

// CheckSound verifies that every operationally observed outcome of p is
// admitted by model m, returning the offending outcomes (empty = sound).
// The admitted set is enumerated through the process-wide cache by
// default; extra litmus options append after it (last wins), so campaign
// drivers can substitute a bounded per-test cache.
func CheckSound(p *litmus.Program, m memmodel.Model, seeds int, opts ...litmus.Option) ([]litmus.Outcome, error) {
	c, err := Compile(p)
	if err != nil {
		return nil, err
	}
	observed, err := c.Observe(seeds)
	if err != nil {
		return nil, err
	}
	all := append([]litmus.Option{litmus.WithCache(litmus.DefaultCache)}, opts...)
	admitted, err := litmus.Enumerate(p, m, all...)
	if err != nil {
		return nil, fmt.Errorf("opcheck: enumerating %q under %s: %w", p.Name, m.Name(), err)
	}
	var bad []litmus.Outcome
	for o := range observed {
		if !admitted[o] {
			bad = append(bad, o)
		}
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
	return bad, nil
}
