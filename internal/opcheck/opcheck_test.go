package opcheck

import (
	"math/rand"
	"testing"

	"repro/internal/litmus"
	"repro/internal/memmodel"
	"repro/internal/models"
)

func TestSoundnessOnClassicCorpus(t *testing.T) {
	// Every outcome the operational machine produces must be admitted by
	// the Armed-Cats model.
	programs := []*litmus.Program{
		litmus.MP(), litmus.SB(), litmus.LB(), litmus.S(), litmus.R(),
		litmus.TwoPlusTwoW(), litmus.CoRR(), litmus.CoWW(), litmus.CoWR(),
		litmus.WRC(), litmus.ISA2(), litmus.IRIW(),
	}
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	for _, p := range programs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			bad, err := CheckSoundNamed(p, "arm", seeds)
			if err != nil {
				t.Fatal(err)
			}
			if len(bad) > 0 {
				t.Fatalf("operational outcomes not admitted by Arm-Cats: %v", bad)
			}
		})
	}
}

func TestWeakOutcomeActuallyObservable(t *testing.T) {
	// The operational model is not vacuous: SB's weak outcome (which
	// needs genuine store-load reordering) shows up.
	c, err := Compile(litmus.SB())
	if err != nil {
		t.Fatal(err)
	}
	observed, err := c.Observe(60)
	if err != nil {
		t.Fatal(err)
	}
	if !observed.Contains("0:a=0", "1:b=0") {
		t.Fatalf("SB weak outcome never observed operationally: %v", observed.Sorted())
	}
}

func TestFencedMPNeverWeakOperationally(t *testing.T) {
	p := litmus.MPArmDMB()
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := c.Observe(60)
	if err != nil {
		t.Fatal(err)
	}
	if observed.Contains("1:a=1", "1:b=0") {
		t.Fatal("DMB-fenced MP exhibited the weak outcome operationally")
	}
}

func TestReleaseStorePublishes(t *testing.T) {
	// MP with an STLR release on Y: writer-side ordering restored even
	// without a DMB.
	p := &litmus.Program{
		Name: "MP+stlr",
		Threads: [][]litmus.Op{
			{
				litmus.Store{Loc: "X", Val: 1},
				litmus.Store{Loc: "Y", Val: 1, Attr: litmus.Attr{Rel: true}},
			},
			{
				litmus.Load{Dst: "a", Loc: "Y", Attr: litmus.Attr{Acq: true}},
				litmus.Load{Dst: "b", Loc: "X"},
			},
		},
	}
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := c.Observe(60)
	if err != nil {
		t.Fatal(err)
	}
	if observed.Contains("1:a=1", "1:b=0") {
		t.Fatal("release store failed to publish the earlier write")
	}
	// And the axiomatic model agrees the observations are fine.
	bad, err := CheckSoundNamed(p, "Arm-Cats", 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) > 0 {
		t.Fatalf("unsound observations: %v", bad)
	}
}

func TestSoundnessOnRandomPrograms(t *testing.T) {
	nProgs := 40
	if testing.Short() {
		nProgs = 10
	}
	locs := []litmus.Loc{"X", "Y", "Z"}
	for seed := 0; seed < nProgs; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		p := &litmus.Program{Name: "rand"}
		regN := 0
		for th := 0; th < 2; th++ {
			var ops []litmus.Op
			n := 2 + rng.Intn(3)
			for i := 0; i < n; i++ {
				switch rng.Intn(4) {
				case 0, 1:
					r := litmus.Reg(string(rune('a' + regN)))
					regN++
					ops = append(ops, litmus.Load{Dst: r, Loc: locs[rng.Intn(3)]})
				case 2:
					ops = append(ops, litmus.Store{Loc: locs[rng.Intn(3)], Val: int64(1 + rng.Intn(3))})
				case 3:
					kinds := []memmodel.Fence{memmodel.FenceDMBFF, memmodel.FenceDMBLD, memmodel.FenceDMBST}
					ops = append(ops, litmus.Fence{K: kinds[rng.Intn(3)]})
				}
			}
			p.Threads = append(p.Threads, ops)
		}
		bad, err := CheckSoundNamed(p, "armcats", 20)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(bad) > 0 {
			t.Fatalf("seed %d: unsound operational outcomes %v for program %+v", seed, bad, p)
		}
	}
}

func TestCompileRejectsUnsupported(t *testing.T) {
	undefReg := &litmus.Program{
		Name:    "undef",
		Threads: [][]litmus.Op{{litmus.StoreReg{Loc: "X", Src: "ghost"}}},
	}
	if _, err := Compile(undefReg); err == nil {
		t.Fatal("storereg of an undefined register must be rejected")
	}
	undefBranch := &litmus.Program{
		Name:    "undefbranch",
		Threads: [][]litmus.Op{{litmus.If{Reg: "ghost", Eq: true, Val: 1}}},
	}
	if _, err := Compile(undefBranch); err == nil {
		t.Fatal("branch on an undefined register must be rejected")
	}
	bigImm := &litmus.Program{
		Name: "bigimm",
		Threads: [][]litmus.Op{{
			litmus.MovImm{Dst: "a", Val: 1},
			litmus.If{Reg: "a", Eq: true, Val: 1 << 20},
		}},
	}
	if _, err := Compile(bigImm); err == nil {
		t.Fatal("If immediate beyond imm12 must be rejected")
	}
	relLoad := &litmus.Program{
		Name:    "relload",
		Threads: [][]litmus.Op{{litmus.Load{Dst: "a", Loc: "X", Attr: litmus.Attr{Rel: true}}}},
	}
	if _, err := Compile(relLoad); err == nil {
		t.Fatal("release-attributed load must be rejected")
	}
}

func TestCASProgramsCompileAndCheckSound(t *testing.T) {
	// The RMW corpus entries (single-instruction amo and lx/sx retry
	// loops, with and without a failure-observing Dst and If body) must
	// now compile and stay sound against the Arm model.
	for _, p := range []*litmus.Program{litmus.MPQ(), litmus.SBQ(), litmus.SBAL()} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			bad, err := CheckSoundNamed(p, "arm", 30)
			if err != nil {
				t.Fatal(err)
			}
			if len(bad) > 0 {
				t.Fatalf("unsound operational outcomes: %v", bad)
			}
		})
	}
}

func TestIRFencesLowerConservatively(t *testing.T) {
	// IR-level fences now lower via the StoreFlush classification: a
	// store-flushing Fwr restores SC on SB, a load-side Frm does not
	// (it lowers to a load barrier, an operational no-op).
	sbWith := func(k memmodel.Fence) *litmus.Program {
		return &litmus.Program{
			Name: "sb+" + k.String(),
			Threads: [][]litmus.Op{
				{litmus.Store{Loc: "X", Val: 1}, litmus.Fence{K: k}, litmus.Load{Dst: "a", Loc: "Y"}},
				{litmus.Store{Loc: "Y", Val: 1}, litmus.Fence{K: k}, litmus.Load{Dst: "b", Loc: "X"}},
			},
		}
	}
	c, err := Compile(sbWith(memmodel.FenceFwr))
	if err != nil {
		t.Fatal(err)
	}
	observed, err := c.Observe(60)
	if err != nil {
		t.Fatal(err)
	}
	if observed.Contains("0:a=0", "1:b=0") {
		t.Fatalf("Fwr-fenced SB exhibited the weak outcome: %v", observed.Sorted())
	}
	if c, err = Compile(sbWith(memmodel.FenceFrm)); err != nil {
		t.Fatal(err)
	}
	if observed, err = c.Observe(60); err != nil {
		t.Fatal(err)
	}
	if !observed.Contains("0:a=0", "1:b=0") {
		t.Fatalf("Frm-fenced SB never weak — load-side fences must not drain stores: %v", observed.Sorted())
	}
}

func TestExecutedMaskHidesUntakenRegisters(t *testing.T) {
	// MPQ's If body runs only when the CAS saw X=1; the outcome keys must
	// include the body's registers exactly when it executed — matching
	// litmus.OutcomeOf — so every operational outcome is enumerable.
	c, err := Compile(litmus.MPQ())
	if err != nil {
		t.Fatal(err)
	}
	observed, err := c.Observe(60)
	if err != nil {
		t.Fatal(err)
	}
	admitted, err := litmus.Enumerate(litmus.MPQ(), models.MustLookup("arm"))
	if err != nil {
		t.Fatal(err)
	}
	for o := range observed {
		if !admitted[o] {
			t.Fatalf("outcome %q not in the enumerable set %v — register-mask rendering diverges from OutcomeOf", o, admitted.Sorted())
		}
	}
}
