package opcheck

import (
	"math/rand"
	"testing"

	"repro/internal/litmus"
	"repro/internal/memmodel"
)

func TestSoundnessOnClassicCorpus(t *testing.T) {
	// Every outcome the operational machine produces must be admitted by
	// the Armed-Cats model.
	programs := []*litmus.Program{
		litmus.MP(), litmus.SB(), litmus.LB(), litmus.S(), litmus.R(),
		litmus.TwoPlusTwoW(), litmus.CoRR(), litmus.CoWW(), litmus.CoWR(),
		litmus.WRC(), litmus.ISA2(), litmus.IRIW(),
	}
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	for _, p := range programs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			bad, err := CheckSoundNamed(p, "arm", seeds)
			if err != nil {
				t.Fatal(err)
			}
			if len(bad) > 0 {
				t.Fatalf("operational outcomes not admitted by Arm-Cats: %v", bad)
			}
		})
	}
}

func TestWeakOutcomeActuallyObservable(t *testing.T) {
	// The operational model is not vacuous: SB's weak outcome (which
	// needs genuine store-load reordering) shows up.
	c, err := Compile(litmus.SB())
	if err != nil {
		t.Fatal(err)
	}
	observed, err := c.Observe(60)
	if err != nil {
		t.Fatal(err)
	}
	if !observed.Contains("0:a=0", "1:b=0") {
		t.Fatalf("SB weak outcome never observed operationally: %v", observed.Sorted())
	}
}

func TestFencedMPNeverWeakOperationally(t *testing.T) {
	p := litmus.MPArmDMB()
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := c.Observe(60)
	if err != nil {
		t.Fatal(err)
	}
	if observed.Contains("1:a=1", "1:b=0") {
		t.Fatal("DMB-fenced MP exhibited the weak outcome operationally")
	}
}

func TestReleaseStorePublishes(t *testing.T) {
	// MP with an STLR release on Y: writer-side ordering restored even
	// without a DMB.
	p := &litmus.Program{
		Name: "MP+stlr",
		Threads: [][]litmus.Op{
			{
				litmus.Store{Loc: "X", Val: 1},
				litmus.Store{Loc: "Y", Val: 1, Attr: litmus.Attr{Rel: true}},
			},
			{
				litmus.Load{Dst: "a", Loc: "Y", Attr: litmus.Attr{Acq: true}},
				litmus.Load{Dst: "b", Loc: "X"},
			},
		},
	}
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := c.Observe(60)
	if err != nil {
		t.Fatal(err)
	}
	if observed.Contains("1:a=1", "1:b=0") {
		t.Fatal("release store failed to publish the earlier write")
	}
	// And the axiomatic model agrees the observations are fine.
	bad, err := CheckSoundNamed(p, "Arm-Cats", 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) > 0 {
		t.Fatalf("unsound observations: %v", bad)
	}
}

func TestSoundnessOnRandomPrograms(t *testing.T) {
	nProgs := 40
	if testing.Short() {
		nProgs = 10
	}
	locs := []litmus.Loc{"X", "Y", "Z"}
	for seed := 0; seed < nProgs; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		p := &litmus.Program{Name: "rand"}
		regN := 0
		for th := 0; th < 2; th++ {
			var ops []litmus.Op
			n := 2 + rng.Intn(3)
			for i := 0; i < n; i++ {
				switch rng.Intn(4) {
				case 0, 1:
					r := litmus.Reg(string(rune('a' + regN)))
					regN++
					ops = append(ops, litmus.Load{Dst: r, Loc: locs[rng.Intn(3)]})
				case 2:
					ops = append(ops, litmus.Store{Loc: locs[rng.Intn(3)], Val: int64(1 + rng.Intn(3))})
				case 3:
					kinds := []memmodel.Fence{memmodel.FenceDMBFF, memmodel.FenceDMBLD, memmodel.FenceDMBST}
					ops = append(ops, litmus.Fence{K: kinds[rng.Intn(3)]})
				}
			}
			p.Threads = append(p.Threads, ops)
		}
		bad, err := CheckSoundNamed(p, "armcats", 20)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(bad) > 0 {
			t.Fatalf("seed %d: unsound operational outcomes %v for program %+v", seed, bad, p)
		}
	}
}

func TestCompileRejectsUnsupported(t *testing.T) {
	withCAS := &litmus.Program{
		Name: "cas",
		Threads: [][]litmus.Op{
			{litmus.CAS{Loc: "X", Expect: 0, New: 1, Attr: litmus.Attr{Class: memmodel.RMWAmo}}},
		},
	}
	if _, err := Compile(withCAS); err == nil {
		t.Fatal("CAS programs are unsupported and must be rejected")
	}
	withIRFence := &litmus.Program{
		Name:    "irfence",
		Threads: [][]litmus.Op{{litmus.Fence{K: memmodel.FenceFrm}}},
	}
	if _, err := Compile(withIRFence); err == nil {
		t.Fatal("IR fences have no Arm lowering here and must be rejected")
	}
	undefReg := &litmus.Program{
		Name:    "undef",
		Threads: [][]litmus.Op{{litmus.StoreReg{Loc: "X", Src: "ghost"}}},
	}
	if _, err := Compile(undefReg); err == nil {
		t.Fatal("storereg of an undefined register must be rejected")
	}
}
