package hostlib

import (
	"crypto/md5"
	"encoding/binary"
	"math"
	"testing"
)

func TestRegisterLookup(t *testing.T) {
	l := New()
	if _, ok := l.Lookup("f"); ok {
		t.Fatal("empty library should miss")
	}
	l.Register("f", func(mem []byte, args []uint64) (uint64, uint64) { return 42, 1 })
	fn, ok := l.Lookup("f")
	if !ok {
		t.Fatal("registered function missing")
	}
	if v, c := fn(nil, nil); v != 42 || c != 1 {
		t.Fatalf("fn = %d, %d", v, c)
	}
	if l.Names() != 1 {
		t.Fatalf("Names = %d", l.Names())
	}
}

func TestDefaultMath(t *testing.T) {
	l := Default()
	sin := l.MustLookup("sin")
	in := math.Float64bits(0.5)
	out, cost := sin(nil, []uint64{in})
	if got := math.Float64frombits(out); math.Abs(got-math.Sin(0.5)) > 1e-12 {
		t.Fatalf("sin(0.5) = %v", got)
	}
	if cost == 0 {
		t.Fatal("math functions must cost cycles")
	}
	sqrt := l.MustLookup("sqrt")
	out, sqrtCost := sqrt(nil, []uint64{math.Float64bits(2)})
	if got := math.Float64frombits(out); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Fatalf("sqrt(2) = %v", got)
	}
	if sqrtCost >= cost {
		t.Fatal("sqrt should be cheaper than sin")
	}
}

func TestDefaultDigests(t *testing.T) {
	l := Default()
	mem := make([]byte, 4096)
	for i := range mem {
		mem[i] = byte(i)
	}
	fn := l.MustLookup("md5")
	got, cost1k := fn(mem, []uint64{0, 1024})
	want := md5.Sum(mem[:1024])
	if got != binary.LittleEndian.Uint64(want[:8]) {
		t.Fatal("md5 result mismatch against crypto/md5")
	}
	_, cost2k := fn(mem, []uint64{0, 2048})
	if cost2k <= cost1k {
		t.Fatal("digest cost must scale with length")
	}
	// Rates order: sha256 cheapest per byte (crypto extensions), md5
	// most expensive.
	sha := l.MustLookup("sha256")
	_, shaCost := sha(mem, []uint64{0, 2048})
	if shaCost >= cost2k {
		t.Fatal("sha256 should be cheaper than md5 natively")
	}
	// Out-of-bounds buffer is refused gracefully.
	if _, c := fn(mem, []uint64{uint64(len(mem)) - 4, 1024}); c == 0 {
		t.Fatal("oob digest should still cost setup")
	}
}

func TestDefaultRSAOrdering(t *testing.T) {
	l := Default()
	cost := func(name string) uint64 {
		_, c := l.MustLookup(name)(nil, []uint64{7})
		return c
	}
	if !(cost("rsa1024_verify") < cost("rsa1024_sign")) {
		t.Fatal("verify must be cheaper than sign")
	}
	if !(cost("rsa1024_sign") < cost("rsa2048_sign")) {
		t.Fatal("1024 must be cheaper than 2048")
	}
	// Deterministic results.
	a, _ := l.MustLookup("rsa1024_sign")(nil, []uint64{7})
	b, _ := l.MustLookup("rsa1024_sign")(nil, []uint64{7})
	if a != b {
		t.Fatal("rsa must be deterministic")
	}
}

func TestSqliteExec(t *testing.T) {
	l := Default()
	fn := l.MustLookup("sqlite_exec")
	mem := make([]byte, 1<<20)
	_, cost := fn(mem, []uint64{0x1000, 100, 42})
	if cost == 0 {
		t.Fatal("sqlite must cost cycles")
	}
	// Table was mutated.
	sum := uint64(0)
	for i := 0; i < 4096; i++ {
		sum += binary.LittleEndian.Uint64(mem[0x1000+i*8:])
	}
	if sum == 0 {
		t.Fatal("sqlite_exec should have written buckets")
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup of missing function must panic")
		}
	}()
	New().MustLookup("ghost")
}
