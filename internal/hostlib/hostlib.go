// Package hostlib is Risotto-Go's registry of native host shared-library
// functions (§6.2): real Go implementations standing in for the host's
// libm / OpenSSL / sqlite, each with a calibrated native cycle cost. The
// dynamic linker dispatches PLT calls here instead of translating the
// guest implementation; the cost model is what lets Figure 13/14's
// translated-vs-native comparison be made inside the simulator.
//
// Cost calibration: native costs are expressed in the same synthetic cycle
// unit as machine.CostTable. Digests cost a per-byte rate plus setup;
// short math kernels cost a flat amount. Guest-side implementations of the
// same functions (internal/workloads) execute instruction-by-instruction
// under the DBT, so the speedup ratios of Figures 13/14 emerge from real
// instruction counts on the guest side versus these constants on the host
// side.
package hostlib

import (
	"crypto/md5"
	"crypto/sha1"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"math/big"
)

// Func is a native host function. mem is the guest/host shared memory
// (user-mode emulation maps them identically, §2.2); args follow the IDL
// signature. It returns the result value and the simulated native cost.
type Func func(mem []byte, args []uint64) (result uint64, cycles uint64)

// Library maps function names to native implementations.
type Library struct {
	funcs map[string]Func
}

// New returns an empty library.
func New() *Library { return &Library{funcs: make(map[string]Func)} }

// Register adds or replaces a function.
func (l *Library) Register(name string, fn Func) { l.funcs[name] = fn }

// Lookup finds a function.
func (l *Library) Lookup(name string) (Func, bool) {
	fn, ok := l.funcs[name]
	return fn, ok
}

// Names returns the registered function count (for stats/tests).
func (l *Library) Names() int { return len(l.funcs) }

// --- Cost constants ----------------------------------------------------------

// Native costs (synthetic cycles). Math kernels are tens of cycles; digest
// rates reflect optimized native code (sha256 fastest — hardware crypto
// extensions on the paper's ThunderX2).
const (
	costSqrt    = 40
	costExpLog  = 100
	costTrig    = 110
	costArcTrig = 130

	// Digest rates order md5 ≫ sha1 > sha256: on the paper's testbed
	// SHA-1/SHA-256 use the Armv8 crypto extensions while MD5 does not,
	// which is why Figure 13's speedups order md5-1024 (1.4×) far below
	// sha256-8192 (23×).
	costDigestSetup   = 120
	costMD5PerByte    = 20
	costSHA1PerByte   = 9
	costSHA256PerByte = 6

	// RSA: native modular exponentiation; sign ≫ verify (e = 65537) and
	// 2048 ≫ 1024.
	costRSA1024Sign   = 45_000
	costRSA1024Verify = 1_500
	costRSA2048Sign   = 300_000
	costRSA2048Verify = 6_000

	costSqlitePerOp = 36
)

// Default returns the library used by the evaluation: libm, OpenSSL-like
// digests and RSA, and a sqlite-like KV engine.
func Default() *Library {
	l := New()

	mathFn := func(cost uint64, f func(float64) float64) Func {
		return func(mem []byte, args []uint64) (uint64, uint64) {
			x := math.Float64frombits(args[0])
			return math.Float64bits(f(x)), cost
		}
	}
	l.Register("sin", mathFn(costTrig, math.Sin))
	l.Register("cos", mathFn(costTrig, math.Cos))
	l.Register("tan", mathFn(costTrig, math.Tan))
	l.Register("asin", mathFn(costArcTrig, math.Asin))
	l.Register("acos", mathFn(costArcTrig, math.Acos))
	l.Register("atan", mathFn(costArcTrig, math.Atan))
	l.Register("exp", mathFn(costExpLog, math.Exp))
	l.Register("log", mathFn(costExpLog, math.Log))
	l.Register("sqrt", mathFn(costSqrt, math.Sqrt))

	digest := func(rate uint64, sum func([]byte) []byte) Func {
		return func(mem []byte, args []uint64) (uint64, uint64) {
			ptr, n := args[0], args[1]
			if ptr+n > uint64(len(mem)) {
				return 0, costDigestSetup
			}
			d := sum(mem[ptr : ptr+n])
			return binary.LittleEndian.Uint64(d[:8]), costDigestSetup + rate*n
		}
	}
	l.Register("md5", digest(costMD5PerByte, func(b []byte) []byte {
		s := md5.Sum(b)
		return s[:]
	}))
	l.Register("sha1", digest(costSHA1PerByte, func(b []byte) []byte {
		s := sha1.Sum(b)
		return s[:]
	}))
	l.Register("sha256", digest(costSHA256PerByte, func(b []byte) []byte {
		s := sha256.Sum256(b)
		return s[:]
	}))

	// RSA modelled as modular exponentiation over fixed moduli. Sign uses
	// the full-size private exponent; verify uses e = 65537.
	rsa := func(bits int, sign bool, cost uint64) Func {
		mod := rsaModulus(bits)
		exp := big.NewInt(65537)
		if sign {
			exp = new(big.Int).Sub(mod, big.NewInt(12345)) // private-exponent-sized
		}
		return func(mem []byte, args []uint64) (uint64, uint64) {
			base := new(big.Int).SetUint64(args[0] | 2)
			r := new(big.Int).Exp(base, exp, mod)
			return r.Uint64() & 0xFFFFFFFF, cost
		}
	}
	l.Register("rsa1024_sign", rsa(1024, true, costRSA1024Sign))
	l.Register("rsa1024_verify", rsa(1024, false, costRSA1024Verify))
	l.Register("rsa2048_sign", rsa(2048, true, costRSA2048Sign))
	l.Register("rsa2048_verify", rsa(2048, false, costRSA2048Verify))

	// sqlite-like engine: hashed key-value inserts+lookups over a table
	// region in guest memory (args: table ptr, op count, seed).
	l.Register("sqlite_exec", func(mem []byte, args []uint64) (uint64, uint64) {
		table, ops, seed := args[0], args[1], args[2]
		const buckets = 4096
		if table+buckets*8 > uint64(len(mem)) {
			return 0, costDigestSetup
		}
		var acc uint64
		x := seed | 1
		for i := uint64(0); i < ops; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			b := (x >> 33) % buckets
			slot := table + b*8
			old := binary.LittleEndian.Uint64(mem[slot:])
			binary.LittleEndian.PutUint64(mem[slot:], old+x)
			acc ^= old
		}
		return acc, costSqlitePerOp * ops
	})

	return l
}

// rsaModulus returns a deterministic odd modulus of the given bit size.
func rsaModulus(bits int) *big.Int {
	m := new(big.Int).Lsh(big.NewInt(1), uint(bits))
	m.Sub(m, big.NewInt(1))
	// Make it composite-but-odd deterministic value (RSA semantics are not
	// under test; only cost/ordering are).
	m.Sub(m, big.NewInt(1<<20))
	m.SetBit(m, 0, 1)
	return m
}

// MustLookup returns the function or panics (test/bench convenience).
func (l *Library) MustLookup(name string) Func {
	fn, ok := l.Lookup(name)
	if !ok {
		panic(fmt.Sprintf("hostlib: %q not registered", name))
	}
	return fn
}
