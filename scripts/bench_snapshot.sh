#!/usr/bin/env bash
# Snapshot the enumeration-critical benchmarks into a small JSON file so the
# perf trajectory is tracked in-repo from PR to PR:
#
#   ./scripts/bench_snapshot.sh                 # writes BENCH_litmus.json
#   BENCHTIME=2s ./scripts/bench_snapshot.sh    # longer, steadier numbers
#   ./scripts/bench_snapshot.sh out.json        # alternate output path
#
# Captured: the rel word-wise kernels (BenchmarkRelOps), the end-to-end
# candidate enumeration (BenchmarkOutcomesParallel, BenchmarkTheorem1),
# the campaign per-test verdict pipeline (BenchmarkCampaignTest, whose
# tests/s metric is the serial campaign throughput), the tier-up JIT
# on/off pairs (BenchmarkTierUp, whose sim_cycles_per_op ratio is the
# hot-block promotion speedup), and the operational exploration engine
# (BenchmarkExplore: states_per_sec transition throughput and the
# coverage_pct of allowed outcomes a full DPOR enumeration reaches).
# check.sh runs this with a short -benchtime as a smoke stage; for numbers
# worth comparing across machines use BENCHTIME=2s or more.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-100x}"
OUT="${1:-BENCH_litmus.json}"

raw="$(
  go test -run '^$' -bench 'BenchmarkRelOps' -benchtime "$BENCHTIME" ./internal/rel/
  go test -run '^$' -bench 'BenchmarkOutcomesParallel|BenchmarkTheorem1|BenchmarkCampaignTest|BenchmarkTierUp|BenchmarkExplore' -benchtime "$BENCHTIME" .
)"

# Benchmark result lines look like:
#   BenchmarkRelOps/UnionWith   100   349.1 ns/op   0 B/op   0 allocs/op
# Sub-benchmark names (workers-1, UnionWith) are kept verbatim.
awk -v benchtime="$BENCHTIME" '
BEGIN {
  printf "{\n  \"generated_by\": \"scripts/bench_snapshot.sh\",\n"
  printf "  \"benchtime\": \"%s\",\n  \"benchmarks\": [", benchtime
  n = 0
}
$1 ~ /^Benchmark/ && $4 == "ns/op" {
  if (n++) printf ","
  printf "\n    {\"name\": \"%s\", \"ns_per_op\": %s", $1, $3
  for (i = 4; i < NF; i++) {
    if ($(i+1) == "B/op")      printf ", \"bytes_per_op\": %s", $i
    if ($(i+1) == "allocs/op") printf ", \"allocs_per_op\": %s", $i
    if ($(i+1) == "tests/s")   printf ", \"tests_per_sec\": %s", $i
    if ($(i+1) == "simcycles/op") printf ", \"sim_cycles_per_op\": %s", $i
    if ($(i+1) == "xmerges/op")   printf ", \"cross_block_fence_merges\": %s", $i
    if ($(i+1) == "states/s")     printf ", \"states_per_sec\": %s", $i
    if ($(i+1) == "coverage%")    printf ", \"coverage_pct\": %s", $i
  }
  printf "}"
}
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
END {
  printf "\n  ],\n  \"cpu\": \"%s\"\n}\n", cpu
}' <<<"$raw" >"$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)"
