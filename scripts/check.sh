#!/usr/bin/env bash
# Tier-1 verification gate. Every PR must pass this script unchanged:
#
#   ./scripts/check.sh
#
# It runs vet, a full build, the full test suite, and — because the litmus
# enumerator and its memoization cache are concurrent subsystems — the race
# detector over the packages that exercise them. Two rel-engine stages ride
# along: the -tags relmap differential run proves the reference map engine
# still satisfies the whole memmodel/models/litmus stack (so the default
# bitset engine is pinned against it), and a one-iteration bench smoke keeps
# scripts/bench_snapshot.sh and the benchmarks it snapshots compiling. The
# explore stages pin the operational exploration engine: DPOR must reach
# every allowed SB outcome, budget-exhausted traces must replay
# byte-identically, and a corpus walk plus a ≥500-test generated campaign
# must find zero axiomatic-disallowed outcomes.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go vet ./internal/obs/ ./internal/cliflags/"
go vet ./internal/obs/ ./internal/cliflags/

echo "==> go test -race ./internal/obs/ ./internal/litmus/... ./internal/mapping/..."
go test -race ./internal/obs/ ./internal/litmus/... ./internal/mapping/...

echo "==> fault matrix: go test ./... -run Fault -count=1"
go test ./... -run Fault -count=1

echo "==> fault matrix (race): go test -race ./internal/faultmatrix/ ./internal/core/ -run Fault -count=1"
go test -race ./internal/faultmatrix/ ./internal/core/ -run Fault -count=1

echo "==> litmusctl fault smoke"
go run ./cmd/litmusctl -workers 4 -fault cache-exhaust corpus >/dev/null
go run ./cmd/litmusctl -workers 4 -fault shard-panic corpus >/dev/null

echo "==> selfheal: workload suite under -selfcheck"
for k in histogram wordcount kmeans swaptions canneal; do
	go run ./cmd/risotto -kernel "$k" -threads 2 -selfcheck >/dev/null
done

echo "==> selfheal: injected miscompile is detected and recovered"
go run ./cmd/risotto -kernel histogram -threads 2 -fault miscompile -selfcheck \
	-metrics json | grep -Eq '"core\.selfheal\.quarantines": *[1-9]' \
	|| { echo "selfheal run recorded no quarantine" >&2; exit 1; }

echo "==> selfheal: crash bundle replays byte-identically"
SH_TMP=$(mktemp -d)
trap 'rm -rf "$SH_TMP"' EXIT
go build -o "$SH_TMP/risotto" ./cmd/risotto
code=0
"$SH_TMP/risotto" -kernel histogram -threads 2 -fault decode@3 \
	-bundle "$SH_TMP/crash.json" 2>/dev/null || code=$?
[ "$code" -eq 3 ] || { echo "trapped run exited $code, want 3" >&2; exit 1; }
"$SH_TMP/risotto" -replay "$SH_TMP/crash.json" -bundle "$SH_TMP/crash2.json" >/dev/null
cmp "$SH_TMP/crash.json" "$SH_TMP/crash2.json" \
	|| { echo "replay re-bundle differs from original" >&2; exit 1; }

echo "==> tierup smoke: hot-block promotion across the workload suite"
for k in histogram wordcount kmeans swaptions canneal; do
	go run ./cmd/risotto -kernel "$k" -threads 2 -scale 2 -tierup -promote-threshold 4 \
		-metrics json | grep -Eq '"core\.selfheal\.promotions": *[1-9]' \
		|| { echo "tierup run of $k recorded no promotion" >&2; exit 1; }
done

echo "==> tierup smoke: superblocks recover cross-block fence merges on fencechain"
go run ./cmd/risotto -kernel fencechain -threads 2 -scale 2 -tierup -promote-threshold 4 \
	-metrics json | grep -Eq '"tcg\.fence_merges_cross_block": *[1-9]' \
	|| { echo "fencechain superblocks merged no cross-block fences" >&2; exit 1; }

echo "==> tierup smoke: miscompile under promotion demotes and still computes the right result"
want=$(go run ./cmd/risotto -kernel kmeans -threads 2 -scale 2 | awk '/^checksum/{print $2}')
got=$(go run ./cmd/risotto -kernel kmeans -threads 2 -scale 2 -tierup -promote-threshold 4 \
	-fault miscompile -selfheal | awk '/^checksum/{print $2}')
[ "$got" = "$want" ] || { echo "faulted tierup checksum $got != $want" >&2; exit 1; }
go run ./cmd/risotto -kernel kmeans -threads 2 -scale 2 -tierup -promote-threshold 4 \
	-fault miscompile -selfheal -metrics json >"$SH_TMP/tierup.json"
grep -Eq '"core\.selfheal\.promotions": *[1-9]' "$SH_TMP/tierup.json" \
	|| { echo "faulted tierup run recorded no promotion" >&2; exit 1; }
grep -Eq '"core\.selfheal\.quarantines": *[1-9]' "$SH_TMP/tierup.json" \
	|| { echo "faulted tierup run recorded no quarantine" >&2; exit 1; }

echo "==> tierup (race): go test -race ./internal/core/ -run TierUp -count=1"
go test -race ./internal/core/ -run TierUp -count=1

echo "==> metrics snapshot validates (risotto -metrics json | obsvalidate)"
go run ./cmd/risotto -kernel histogram -threads 2 -metrics json | go run ./cmd/obsvalidate >/dev/null

echo "==> campaign smoke: seeded generated-corpus campaign, all verdicts pass"
go run ./cmd/litmusctl -workers 4 -metrics json campaign \
	-out "$SH_TMP/campaign.jsonl" -max-per-shape 6 -opcheck-seeds 2 \
	| go run ./cmd/obsvalidate >/dev/null
grep -q '"format":"risotto-campaign/v1"' "$SH_TMP/campaign.jsonl" \
	|| { echo "campaign results file lacks the v1 header" >&2; exit 1; }

echo "==> explore smoke: DPOR reaches full SB coverage and traces replay byte-identically"
go run ./cmd/litmusctl explore -mode dpor SB >"$SH_TMP/explore-sb.txt"
grep -q "4/4 (100%)" "$SH_TMP/explore-sb.txt" \
	|| { echo "DPOR on SB missed allowed outcomes" >&2; cat "$SH_TMP/explore-sb.txt" >&2; exit 1; }
go run ./cmd/litmusctl explore -mode dpor -max-states 64 -trace-out "$SH_TMP/sb.trace" SB >/dev/null
go run ./cmd/litmusctl explore -mode replay -trace "$SH_TMP/sb.trace" | grep -q "byte-identical" \
	|| { echo "budget-exhausted trace did not replay byte-identically" >&2; exit 1; }

echo "==> explore soak: corpus walk + ≥500-test generated campaign, zero violations"
go run ./cmd/litmusctl explore -out "$SH_TMP/soak.jsonl" 2>/dev/null
grep -q '"format":"risotto-explore/v1"' "$SH_TMP/soak.jsonl" \
	|| { echo "soak results file lacks the v1 header" >&2; exit 1; }
go run ./cmd/litmusctl -workers 4 campaign -out "$SH_TMP/explore-campaign.jsonl" \
	-max-per-shape 32 -opcheck-seeds 1 -explore-seeds 4 2>"$SH_TMP/explore-campaign.log" \
	|| { echo "explore campaign failed" >&2; cat "$SH_TMP/explore-campaign.log" >&2; exit 1; }
tests=$(grep -c '"explore":"pass"' "$SH_TMP/explore-campaign.jsonl" || true)
[ "${tests:-0}" -ge 500 ] || { echo "explore campaign passed the explore check on only ${tests:-0} tests, want ≥500" >&2; exit 1; }

echo "==> daemon smoke: risottod serve/submit/snapshot/drain cycle"
go build -o "$SH_TMP/risottod" ./cmd/risottod
"$SH_TMP/risottod" -listen 127.0.0.1:0 -addr-file "$SH_TMP/addr" \
	-cache "$SH_TMP/cache.jsonl" 2>"$SH_TMP/daemon.log" &
DAEMON=$!
for _ in $(seq 1 100); do [ -s "$SH_TMP/addr" ] && break; sleep 0.05; done
[ -s "$SH_TMP/addr" ] || { echo "risottod never wrote its address" >&2; exit 1; }
ADDR=$(cat "$SH_TMP/addr")
"$SH_TMP/risottod" -submit -addr "$ADDR" -tenant smoke -kernel histogram -threads 2 >/dev/null \
	|| { echo "clean daemon job failed" >&2; exit 1; }
code=0
"$SH_TMP/risottod" -submit -addr "$ADDR" -tenant smoke -kernel histogram \
	-step-budget 5000 >"$SH_TMP/trap.json" 2>/dev/null || code=$?
[ "$code" -eq 3 ] || { echo "step-budget daemon job exited $code, want 3" >&2; exit 1; }
grep -q '"bundle"' "$SH_TMP/trap.json" \
	|| { echo "trapped daemon job carries no crash bundle" >&2; exit 1; }
"$SH_TMP/risottod" -snapshot -addr "$ADDR" | go run ./cmd/obsvalidate >/dev/null \
	|| { echo "daemon metrics snapshot failed validation" >&2; exit 1; }
kill -TERM "$DAEMON"
code=0
wait "$DAEMON" || code=$?
[ "$code" -eq 0 ] || { echo "risottod drain exited $code (log follows)" >&2; cat "$SH_TMP/daemon.log" >&2; exit 1; }
grep -q "drained cleanly" "$SH_TMP/daemon.log" \
	|| { echo "risottod did not report a clean drain" >&2; exit 1; }

echo "==> matrix smoke: litmusctl matrix (verified routes pass, QEMU cells still fail)"
go run ./cmd/litmusctl matrix >"$SH_TMP/matrix.txt" \
	|| { echo "litmusctl matrix exited non-zero (a verified route failed)" >&2; cat "$SH_TMP/matrix.txt" >&2; exit 1; }
grep -q "all verified routes pass" "$SH_TMP/matrix.txt" \
	|| { echo "matrix lost the verified-routes-pass line" >&2; exit 1; }
grep -q "x86→tcg/qemu + tcg→arm/qemu-casal *known-bad FAIL .*MPQ" "$SH_TMP/matrix.txt" \
	|| { echo "matrix no longer reproduces the §3.1 casal failure on MPQ" >&2; exit 1; }
grep -q "tcg→arm/qemu-lxsx *known-bad FAIL .*SBQ" "$SH_TMP/matrix.txt" \
	|| { echo "matrix no longer reproduces the §3.2 exclusive-pair failure on SBQ" >&2; exit 1; }

echo "==> rel engine differential: go test -tags relmap (map engine over the full stack)"
go test -tags relmap ./internal/rel/ ./internal/memmodel/ ./internal/models/... \
	./internal/litmus/ ./internal/mapping/... ./internal/opcheck/

echo "==> bench smoke: scripts/bench_snapshot.sh (one short iteration)"
BENCHTIME=1x ./scripts/bench_snapshot.sh "$(mktemp)"

echo "OK"
