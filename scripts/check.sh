#!/usr/bin/env bash
# Tier-1 verification gate. Every PR must pass this script unchanged:
#
#   ./scripts/check.sh
#
# It runs vet, a full build, the full test suite, and — because the litmus
# enumerator and its memoization cache are concurrent subsystems — the race
# detector over the packages that exercise them. Two rel-engine stages ride
# along: the -tags relmap differential run proves the reference map engine
# still satisfies the whole memmodel/models/litmus stack (so the default
# bitset engine is pinned against it), and a one-iteration bench smoke keeps
# scripts/bench_snapshot.sh and the benchmarks it snapshots compiling.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go vet ./internal/obs/ ./internal/cliflags/"
go vet ./internal/obs/ ./internal/cliflags/

echo "==> go test -race ./internal/obs/ ./internal/litmus/... ./internal/mapping/..."
go test -race ./internal/obs/ ./internal/litmus/... ./internal/mapping/...

echo "==> fault matrix: go test ./... -run Fault -count=1"
go test ./... -run Fault -count=1

echo "==> fault matrix (race): go test -race ./internal/faultmatrix/ ./internal/core/ -run Fault -count=1"
go test -race ./internal/faultmatrix/ ./internal/core/ -run Fault -count=1

echo "==> litmusctl fault smoke"
go run ./cmd/litmusctl -workers 4 -fault cache-exhaust corpus >/dev/null
go run ./cmd/litmusctl -workers 4 -fault shard-panic corpus >/dev/null

echo "==> metrics snapshot validates (risotto -metrics json | obsvalidate)"
go run ./cmd/risotto -kernel histogram -threads 2 -metrics json | go run ./cmd/obsvalidate >/dev/null

echo "==> rel engine differential: go test -tags relmap (map engine over the full stack)"
go test -tags relmap ./internal/rel/ ./internal/memmodel/ ./internal/models/... \
	./internal/litmus/ ./internal/mapping/... ./internal/opcheck/

echo "==> bench smoke: scripts/bench_snapshot.sh (one short iteration)"
BENCHTIME=1x ./scripts/bench_snapshot.sh "$(mktemp)"

echo "OK"
