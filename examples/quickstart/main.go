// Quickstart: assemble a small x86 guest program, run it under the
// Risotto-Go DBT in each variant, and inspect the fence statistics.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/guestimg"
	"repro/internal/isa/x86"
)

func main() {
	// Build a guest image: dot-product of two vectors, result via the
	// exit code.
	b := guestimg.NewBuilder(0x10000, 0x80000)
	const n = 64
	vecData := func(seed uint64) []byte {
		out := make([]byte, n*8)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(out[i*8:], seed*uint64(i+1)%97)
		}
		return out
	}
	va := b.Data(vecData(3))
	vb := b.Data(vecData(7))

	a := b.Asm
	a.Label("main").
		MovRI(x86.RDI, int64(va)).
		MovRI(x86.RSI, int64(vb)).
		MovRI(x86.RCX, 0). // i
		MovRI(x86.RAX, 0). // acc
		Label("loop").
		Load(x86.RBX, x86.MemIdx(x86.RDI, x86.RCX, 8, 0), 8).
		Load(x86.RDX, x86.MemIdx(x86.RSI, x86.RCX, 8, 0), 8).
		MulRR(x86.RBX, x86.RDX).
		AddRR(x86.RAX, x86.RBX).
		AddRI(x86.RCX, 1).
		CmpRI(x86.RCX, n).
		Jcc(x86.CondNE, "loop").
		// exit(acc & 0xffff)
		AndRI(x86.RAX, 0xFFFF).
		MovRR(x86.RDI, x86.RAX).
		MovRI(x86.RAX, core.GuestSysExit).
		Syscall()

	img, err := b.Build("main")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("dot product under each DBT variant:")
	for _, v := range []core.Variant{
		core.VariantQemu, core.VariantNoFences, core.VariantTCGVer, core.VariantRisotto,
	} {
		rt, err := core.New(img, core.WithVariant(v))
		if err != nil {
			log.Fatal(err)
		}
		code, err := rt.Run()
		if err != nil {
			log.Fatal(err)
		}
		st := rt.Stats()
		fmt.Printf("  %-10v result=%-6d cycles=%-8d fences: FF=%d LD=%d ST=%d\n",
			v, code, rt.M.MaxCycles(), st.DMBFull, st.DMBLoad, st.DMBStore)
	}
	fmt.Println("\nall variants agree on the result; only fence placement —")
	fmt.Println("and therefore simulated time — differs (§6.1 of the paper).")
}
