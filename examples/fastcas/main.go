// Fastcas: demonstrate §6.3's direct CAS translation — Risotto lowers
// LOCK CMPXCHG to a single casal instruction, while QEMU routes it through
// a helper call. Uncontended, the helper overhead is visible; contended,
// cache-line transfer dominates and the two converge (Figure 15).
//
//	go run ./examples/fastcas
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	const ops = 500
	fmt.Printf("%-14s %12s %12s %10s\n", "config(T-V)", "qemu-cyc", "risotto-cyc", "gain")
	for _, cfg := range [][2]int{{4, 4}, {4, 1}} {
		threads, vars := cfg[0], cfg[1]
		run := func(v core.Variant) uint64 {
			b, err := workloads.CASBench(threads, vars, ops)
			if err != nil {
				log.Fatal(err)
			}
			cycles, sum, _, err := bench.RunGuest(b, v, "")
			if err != nil {
				log.Fatal(err)
			}
			if sum != uint64(threads*ops) {
				log.Fatalf("bad counter sum %d", sum)
			}
			return cycles
		}
		q := run(core.VariantQemu)
		r := run(core.VariantRisotto)
		kind := "uncontended"
		if vars < threads {
			kind = "contended"
		}
		fmt.Printf("%d-%d %-9s %12d %12d %9.1f%%\n",
			threads, vars, "("+kind+")", q, r, 100*(float64(q)/float64(r)-1))
	}
	fmt.Println("\nuncontended: the helper call's overhead is the story;")
	fmt.Println("contended: casal's line transfer dominates and the gap closes (§7.4).")
}
