// Weakhost: execute the DBT's *generated code* on the operational
// weak-memory host (store buffers with out-of-order drain) and watch the
// paper's story play out: the no-fences translation of message passing
// exhibits the reordering x86 forbids, while the QEMU and verified
// translations' fences eliminate it.
//
//	go run ./examples/weakhost
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/guestimg"
	"repro/internal/isa/x86"
)

// buildMP builds guest message passing: a writer thread storing X then Y,
// and the main thread spinning on Y then reading X. Exit code = (a<<1)|b.
func buildMP() (*guestimg.Image, error) {
	b := guestimg.NewBuilder(0x10000, 0x40000)
	x := b.Zeros(8)
	y := b.Zeros(8)
	a := b.Asm

	a.Label("writer").
		MovRI(x86.RSI, int64(x)).
		MovRI(x86.RBX, 1).
		Store(x86.Mem0(x86.RSI), x86.RBX, 8).
		MovRI(x86.RDI, int64(y)).
		Store(x86.Mem0(x86.RDI), x86.RBX, 8).
		MovRI(x86.RCX, 0).
		Label("busy").
		AddRI(x86.RCX, 1).
		CmpRI(x86.RCX, 40).
		Jcc(x86.CondNE, "busy").
		MovRI(x86.RDI, 0).
		MovRI(x86.RAX, core.GuestSysExit).
		Syscall()

	a.Label("main").
		MovSym(x86.RDI, "writer").
		MovRI(x86.RSI, 0).
		MovRI(x86.RAX, core.GuestSysSpawn).
		Syscall().
		MovRR(x86.R12, x86.RAX).
		MovRI(x86.RCX, 0).
		MovRI(x86.RDX, int64(y)).
		Label("spin").
		AddRI(x86.RCX, 1).
		CmpRI(x86.RCX, 3000).
		Jcc(x86.CondA, "giveup").
		Load(x86.RBX, x86.Mem0(x86.RDX), 8).
		CmpRI(x86.RBX, 1).
		Jcc(x86.CondNE, "spin").
		Label("giveup").
		MovRI(x86.RDX, int64(x)).
		Load(x86.R9, x86.Mem0(x86.RDX), 8).
		MovRR(x86.RDI, x86.R12).
		MovRI(x86.RAX, core.GuestSysJoin).
		Syscall().
		MovRR(x86.RDI, x86.RBX).
		ShlRI(x86.RDI, 1).
		OrRR(x86.RDI, x86.R9).
		MovRI(x86.RAX, core.GuestSysExit).
		Syscall()

	return b.Build("main")
}

func main() {
	img, err := buildMP()
	if err != nil {
		log.Fatal(err)
	}
	const seeds = 80
	fmt.Printf("message passing on the weak host, %d seeds per variant:\n\n", seeds)
	fmt.Printf("%-11s %14s %s\n", "variant", "weak outcomes", "verdict")
	for _, v := range []core.Variant{
		core.VariantNoFences, core.VariantQemu, core.VariantTCGVer, core.VariantRisotto,
	} {
		weak := 0
		for seed := int64(0); seed < seeds; seed++ {
			rt, err := core.New(img,
				core.WithVariant(v), core.WithWeakMemory(seed), core.WithQuantum(1))
			if err != nil {
				log.Fatal(err)
			}
			code, err := rt.Run()
			if err != nil {
				log.Fatal(err)
			}
			if code>>1 == 1 && code&1 == 0 { // a=1, b=0
				weak++
			}
		}
		verdict := "correct: fences order the stores"
		if weak > 0 {
			verdict = "INCORRECT: x86-forbidden outcome observed"
		}
		fmt.Printf("%-11v %10d/%d    %s\n", v, weak, seeds, verdict)
	}
	fmt.Println("\n(the axiomatic counterpart of this experiment: go run ./examples/litmus)")
}
