// Hostlinker: demonstrate §6.2's dynamic host library linker — the same
// guest binary runs its own (slow, translated) sin and md5 when the IDL is
// absent, and dispatches to the native host library when it is present.
//
//	go run ./examples/hostlinker
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	fmt.Println("guest program: 16 calls to sin() through the PLT")
	b, err := workloads.MathProgram("sin", 16)
	if err != nil {
		log.Fatal(err)
	}
	cyclesGuest, _, stGuest, err := bench.RunGuest(b, core.VariantRisotto, "")
	if err != nil {
		log.Fatal(err)
	}

	b2, err := workloads.MathProgram("sin", 16)
	if err != nil {
		log.Fatal(err)
	}
	cyclesLinked, _, stLinked, err := bench.RunGuest(b2, core.VariantRisotto, workloads.IDLAll)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("  without IDL: %8d cycles, host calls %d (guest soft-float runs)\n",
		cyclesGuest, stGuest.HostCalls)
	fmt.Printf("  with IDL:    %8d cycles, host calls %d (native libm runs)\n",
		cyclesLinked, stLinked.HostCalls)
	fmt.Printf("  speedup: %.1fx\n\n", float64(cyclesGuest)/float64(cyclesLinked))

	fmt.Println("guest program: 4 md5 digests of a 1 KiB buffer through the PLT")
	b3, err := workloads.DigestProgram("md5", 1024, 4)
	if err != nil {
		log.Fatal(err)
	}
	cg, _, _, err := bench.RunGuest(b3, core.VariantQemu, "")
	if err != nil {
		log.Fatal(err)
	}
	b4, err := workloads.DigestProgram("md5", 1024, 4)
	if err != nil {
		log.Fatal(err)
	}
	cl, _, st, err := bench.RunGuest(b4, core.VariantRisotto, workloads.IDLAll)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  translated guest md5: %8d cycles\n", cg)
	fmt.Printf("  host-linked md5:      %8d cycles (crypto/md5, %d host calls)\n", cl, st.HostCalls)
	fmt.Printf("  speedup: %.1fx\n\n", float64(cg)/float64(cl))

	fmt.Println("IDL declarations driving the linker (excerpt):")
	fmt.Println("  f64 sin(f64 x);")
	fmt.Println("  u64 md5(buf data, u64 len);")
}
