// Litmus: walk through the paper's §3 counterexamples with the axiomatic
// model checker — QEMU's MPQ translation error, and the Armed-Cats casal
// error on SBAL.
//
//	go run ./examples/litmus
package main

import (
	"fmt"

	"repro/internal/litmus"
	"repro/internal/mapping"
	"repro/internal/models/armcats"
	"repro/internal/models/x86tso"
)

func main() {
	// --- MPQ (§3.2) -----------------------------------------------------
	mpq := litmus.MPQ()
	fmt.Println("MPQ: x86 forbids a=1 with a failed RMW (X stays 1):")
	x86Out := litmus.Outcomes(mpq, x86tso.New())
	fmt.Printf("  x86 allows a=1,X=1?  %v\n", x86Out.Contains("1:a=1", "X=1"))

	qemuArm := mapping.X86ToArm(mpq, mapping.X86Qemu, mapping.ArmQemu, mapping.RMWHelperCasal)
	armOut := litmus.Outcomes(qemuArm, armcats.New())
	fmt.Printf("  QEMU-translated Arm allows a=1,X=1?  %v   ← the bug\n",
		armOut.Contains("1:a=1", "X=1"))

	risoArm := mapping.X86ToArm(mpq, mapping.X86Verified, mapping.ArmVerified, mapping.RMWCasal)
	risoOut := litmus.Outcomes(risoArm, armcats.New())
	fmt.Printf("  Risotto-translated Arm allows a=1,X=1?  %v   ← fixed by the trailing Frm\n\n",
		risoOut.Contains("1:a=1", "X=1"))

	// --- SBAL (§3.3) ----------------------------------------------------
	sbal := litmus.SBAL()
	sbalArm := litmus.SBALArm()
	fmt.Println("SBAL: casal must behave like x86 RMW (full fence):")
	fmt.Printf("  x86 allows a=b=0?  %v\n",
		litmus.Outcomes(sbal, x86tso.New()).Contains("0:a=0", "1:b=0"))
	fmt.Printf("  original Arm-Cats allows a=b=0?  %v   ← the model error Risotto reported\n",
		litmus.Outcomes(sbalArm, armcats.NewVariant(armcats.Original)).Contains("0:a=0", "1:b=0"))
	fmt.Printf("  corrected Arm-Cats allows a=b=0?  %v   ← after the accepted strengthening\n\n",
		litmus.Outcomes(sbalArm, armcats.New()).Contains("0:a=0", "1:b=0"))

	// --- Theorem 1 over the corpus ---------------------------------------
	fmt.Println("Theorem 1 (behaviour containment) for the verified end-to-end mapping:")
	for _, p := range litmus.X86Corpus() {
		arm := mapping.X86ToArm(p, mapping.X86Verified, mapping.ArmVerified, mapping.RMWCasal)
		v := mapping.VerifyTheorem1(p, x86tso.New(), arm, armcats.New())
		fmt.Printf("  %-12s correct=%v\n", p.Name, v.Correct())
	}
}
