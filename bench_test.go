// Package repro's top-level benchmarks regenerate every table and figure of
// the Risotto paper's evaluation (§7) as testing.B benchmarks, one target
// per figure:
//
//	go test -bench BenchmarkFig12 .   # Figure 12 (PARSEC + Phoenix)
//	go test -bench BenchmarkFig13 .   # Figure 13 (OpenSSL + sqlite linker)
//	go test -bench BenchmarkFig14 .   # Figure 14 (libm linker)
//	go test -bench BenchmarkFig15 .   # Figure 15 (CAS contention)
//	go test -bench BenchmarkTheorem1 .# §5.4 mapping verification
//	go test -bench BenchmarkAblation .# optimizer-pass ablations (§6.1)
//
// Each benchmark reports the simulated cycle count of one run as the
// "simcycles/op" metric — the quantity the paper's figures plot — while
// ns/op measures the simulator itself. For the formatted figures, use
// cmd/risobench.
package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/litmus"
	"repro/internal/litmusgen"
	"repro/internal/mapping"
	"repro/internal/memmodel"
	"repro/internal/models/armcats"
	"repro/internal/models/x86tso"
	"repro/internal/obs"
	"repro/internal/portasm"
	"repro/internal/tcg"
	"repro/internal/workloads"
)

var fig12Variants = []core.Variant{
	core.VariantQemu, core.VariantNoFences, core.VariantTCGVer, core.VariantRisotto,
}

// benchGuest runs one prepared builder factory under a variant for b.N
// iterations, reporting simulated cycles.
func benchGuest(b *testing.B, build func() (*portasm.Builder, error), v core.Variant, idl string) {
	b.Helper()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		pb, err := build()
		if err != nil {
			b.Fatal(err)
		}
		cyc, _, _, err := bench.RunGuest(pb, v, idl)
		if err != nil {
			b.Fatal(err)
		}
		cycles = cyc
	}
	b.ReportMetric(float64(cycles), "simcycles/op")
}

func benchNative(b *testing.B, build func() (*portasm.Builder, error)) {
	b.Helper()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		pb, err := build()
		if err != nil {
			b.Fatal(err)
		}
		cyc, _, err := bench.RunNative(pb)
		if err != nil {
			b.Fatal(err)
		}
		cycles = cyc
	}
	b.ReportMetric(float64(cycles), "simcycles/op")
}

// BenchmarkFig12 regenerates Figure 12: every PARSEC/Phoenix kernel under
// the four DBT variants plus native execution.
func BenchmarkFig12(b *testing.B) {
	const threads, scale = 4, 1
	for _, k := range workloads.Registry() {
		k := k
		build := func() (*portasm.Builder, error) { return k.Build(threads, scale) }
		for _, v := range fig12Variants {
			v := v
			b.Run(k.Name+"/"+v.String(), func(b *testing.B) {
				benchGuest(b, build, v, "")
			})
		}
		b.Run(k.Name+"/native", func(b *testing.B) {
			benchNative(b, build)
		})
	}
}

// BenchmarkFig13 regenerates Figure 13: OpenSSL-like digests, RSA and the
// sqlite workload, translated (qemu) vs host-linked (risotto).
func BenchmarkFig13(b *testing.B) {
	type entry struct {
		name  string
		build func() (*portasm.Builder, error)
	}
	entries := []entry{
		{"md5-1024", func() (*portasm.Builder, error) { return workloads.DigestProgram("md5", 1024, 4) }},
		{"md5-8192", func() (*portasm.Builder, error) { return workloads.DigestProgram("md5", 8192, 2) }},
		{"rsa1024-sign", func() (*portasm.Builder, error) { return workloads.RSAProgram(1024, true, 2) }},
		{"rsa1024-verify", func() (*portasm.Builder, error) { return workloads.RSAProgram(1024, false, 8) }},
		{"rsa2048-sign", func() (*portasm.Builder, error) { return workloads.RSAProgram(2048, true, 1) }},
		{"rsa2048-verify", func() (*portasm.Builder, error) { return workloads.RSAProgram(2048, false, 8) }},
		{"sha1-1024", func() (*portasm.Builder, error) { return workloads.DigestProgram("sha1", 1024, 4) }},
		{"sha1-8192", func() (*portasm.Builder, error) { return workloads.DigestProgram("sha1", 8192, 2) }},
		{"sha256-1024", func() (*portasm.Builder, error) { return workloads.DigestProgram("sha256", 1024, 4) }},
		{"sha256-8192", func() (*portasm.Builder, error) { return workloads.DigestProgram("sha256", 8192, 2) }},
		{"sqlite", func() (*portasm.Builder, error) { return workloads.SqliteProgram(512, 2) }},
	}
	for _, e := range entries {
		e := e
		b.Run(e.name+"/qemu", func(b *testing.B) { benchGuest(b, e.build, core.VariantQemu, "") })
		b.Run(e.name+"/risotto-linked", func(b *testing.B) {
			benchGuest(b, e.build, core.VariantRisotto, workloads.IDLAll)
		})
	}
}

// BenchmarkFig14 regenerates Figure 14: the math library, translated
// soft-float vs host-linked libm.
func BenchmarkFig14(b *testing.B) {
	for _, fn := range workloads.MathNames() {
		fn := fn
		build := func() (*portasm.Builder, error) { return workloads.MathProgram(fn, 16) }
		b.Run(fn+"/qemu", func(b *testing.B) { benchGuest(b, build, core.VariantQemu, "") })
		b.Run(fn+"/risotto-linked", func(b *testing.B) {
			benchGuest(b, build, core.VariantRisotto, workloads.IDLAll)
		})
	}
}

// BenchmarkFig15 regenerates Figure 15: CAS throughput across contention
// configurations.
func BenchmarkFig15(b *testing.B) {
	const ops = 400
	for _, cfg := range workloads.Fig15Configs() {
		threads, vars := cfg[0], cfg[1]
		name := fmt.Sprintf("%dthreads-%dvars", threads, vars)
		build := func() (*portasm.Builder, error) { return workloads.CASBench(threads, vars, ops) }
		b.Run(name+"/qemu", func(b *testing.B) { benchGuest(b, build, core.VariantQemu, "") })
		b.Run(name+"/risotto", func(b *testing.B) { benchGuest(b, build, core.VariantRisotto, "") })
		b.Run(name+"/native", func(b *testing.B) { benchNative(b, build) })
	}
}

// BenchmarkTierUp measures the tier-up JIT: each kernel runs under the
// risotto variant with promotion off (every block stays at its start
// tier) and on (hot blocks promoted to superblocks in the background).
// simcycles/op is the guest-visible cost the on/off ratio turns into the
// tier-up speedup; the on case also reports how many cross-block fence
// merges the superblocks recovered.
func BenchmarkTierUp(b *testing.B) {
	tierup := core.WithTierUp(core.TierUpConfig{
		Enabled: true, PromoteThreshold: 4, SuperblockMax: 4,
	})
	for _, kname := range []string{"fencechain", "kmeans"} {
		k, err := workloads.KernelByName(kname)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			name string
			opts []core.Option
		}{
			{"off", nil},
			{"on", []core.Option{tierup}},
		} {
			b.Run(kname+"/"+mode.name, func(b *testing.B) {
				var cycles, merges uint64
				for i := 0; i < b.N; i++ {
					// Scale 4 keeps the kernel running long enough that
					// background promotions land well before it retires.
					pb, err := k.Build(2, 4)
					if err != nil {
						b.Fatal(err)
					}
					cyc, _, st, err := bench.RunGuestScoped(
						pb, core.VariantRisotto, "", 0, nil, mode.opts...)
					if err != nil {
						b.Fatal(err)
					}
					cycles, merges = cyc, st.CrossBlockFenceMerges
				}
				b.ReportMetric(float64(cycles), "simcycles/op")
				if len(mode.opts) > 0 {
					b.ReportMetric(float64(merges), "xmerges/op")
				}
			})
		}
	}
}

// BenchmarkTheorem1 measures the mapping-verification sweep (§5.4): the
// full corpus through the verified x86→IR→Arm pipeline.
func BenchmarkTheorem1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range litmus.X86Corpus() {
			arm := mapping.X86ToArm(p, mapping.X86Verified, mapping.ArmVerified, mapping.RMWCasal)
			v := mapping.VerifyTheorem1(p, x86tso.New(), arm, armcats.New())
			if !v.Correct() {
				b.Fatalf("%s: verified mapping broken", p.Name)
			}
		}
	}
}

// sb3q is a three-thread store-buffering variant with one CAS per thread:
// each CAS contributes a success/failure choice bit, so the program has
// 2³ = 8 thread-skeleton combinations and a wide rf tree below each — the
// shape the parallel enumerator shards.
func sb3q() *litmus.Program {
	return &litmus.Program{
		Name: "SB3Q",
		Threads: [][]litmus.Op{
			{
				litmus.Store{Loc: "X", Val: 1},
				litmus.CAS{Loc: "U", Expect: 0, New: 1, Attr: litmus.Attr{Class: memmodel.RMWAmo}},
				litmus.Load{Dst: "a", Loc: "Y"},
				litmus.Load{Dst: "b", Loc: "Z"},
			},
			{
				litmus.Store{Loc: "Y", Val: 1},
				litmus.CAS{Loc: "V", Expect: 0, New: 1, Attr: litmus.Attr{Class: memmodel.RMWAmo}},
				litmus.Load{Dst: "c", Loc: "Z"},
				litmus.Load{Dst: "d", Loc: "X"},
			},
			{
				litmus.Store{Loc: "Z", Val: 1},
				litmus.CAS{Loc: "W", Expect: 0, New: 1, Attr: litmus.Attr{Class: memmodel.RMWAmo}},
				litmus.Load{Dst: "e", Loc: "X"},
				litmus.Load{Dst: "f", Loc: "Y"},
			},
		},
	}
}

// BenchmarkOutcomesParallel compares the serial enumerator (workers-1) with
// the sharded worker pool on a multi-skeleton litmus program. The workers-N
// sub-benchmarks divide the same search space, so ns/op ratios are the
// parallel speedup.
func BenchmarkOutcomesParallel(b *testing.B) {
	prog := sb3q()
	m := x86tso.New()
	serial := litmus.Outcomes(prog, m)

	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		w := w
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := litmus.Enumerate(prog, m, litmus.WithWorkers(w))
				if err != nil {
					b.Fatal(err)
				}
				if len(out) != len(serial) {
					b.Fatalf("workers=%d: %d outcomes, serial has %d", w, len(out), len(serial))
				}
			}
		})
	}
}

// BenchmarkEnumerateInstrumented puts a number on the observability tax:
// the same enumeration as BenchmarkOutcomesParallel/workers-4, once bare
// and once with a live obs scope (counters, duration histogram, span per
// enumeration). The ns/op ratio is the instrumentation overhead, which the
// nil-check design keeps in the noise (bare) and a handful of atomics
// (instrumented).
func BenchmarkEnumerateInstrumented(b *testing.B) {
	prog := sb3q()
	m := x86tso.New()
	serial := litmus.Outcomes(prog, m)
	run := func(b *testing.B, opts ...litmus.Option) {
		for i := 0; i < b.N; i++ {
			out, err := litmus.Enumerate(prog, m, opts...)
			if err != nil || len(out) != len(serial) {
				b.Fatalf("%d outcomes (err %v), serial has %d", len(out), err, len(serial))
			}
		}
	}
	b.Run("bare", func(b *testing.B) {
		run(b, litmus.WithWorkers(4))
	})
	b.Run("obs", func(b *testing.B) {
		run(b, litmus.WithWorkers(4), litmus.WithObs(obs.NewScope("")))
	})
}

// BenchmarkCampaignTest measures the campaign driver's unit of work: one
// generated litmus test through its full verdict pipeline (Theorem-1
// containment for x86-level tests, direct enumeration for Arm-level ones,
// plus the operational soundness check). The reported tests/s is the
// serial per-worker campaign throughput scripts/bench_snapshot.sh records
// in BENCH_litmus.json.
func BenchmarkCampaignTest(b *testing.B) {
	var tests []*litmusgen.Test
	litmusgen.Stream(litmusgen.Config{Seed: 1, MaxThreads: 2, MaxPerShape: 16},
		func(t *litmusgen.Test) bool { tests = append(tests, t); return true })
	if len(tests) == 0 {
		b.Fatal("generator emitted no tests")
	}
	cfg := campaign.Config{OpcheckSeeds: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := campaign.Check(cfg, tests[i%len(tests)])
		if rec.Verdict == campaign.VerdictFail {
			b.Fatalf("%s: %s", rec.Name, rec.Detail)
		}
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "tests/s")
	}
}

// BenchmarkChaining measures translation-block chaining (QEMU's goto_tb,
// reproduced as an extension) on a memory-bound kernel.
func BenchmarkChaining(b *testing.B) {
	k, err := workloads.KernelByName("histogram")
	if err != nil {
		b.Fatal(err)
	}
	for _, chain := range []bool{false, true} {
		chain := chain
		name := "off"
		if chain {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				pb, err := k.Build(2, 1)
				if err != nil {
					b.Fatal(err)
				}
				img, err := pb.BuildGuest("main")
				if err != nil {
					b.Fatal(err)
				}
				rt, err := core.New(img, core.WithVariant(core.VariantRisotto), core.WithChain(chain))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := rt.Run(); err != nil {
					b.Fatal(err)
				}
				cycles = rt.M.MaxCycles()
			}
			b.ReportMetric(float64(cycles), "simcycles/op")
		})
	}
}

// BenchmarkAblation isolates each optimizer pass's contribution (§6.1) on
// a store-heavy kernel under the verified mapping.
func BenchmarkAblation(b *testing.B) {
	k, err := workloads.KernelByName("freqmine")
	if err != nil {
		b.Fatal(err)
	}
	configs := map[string]tcg.OptConfig{
		"none":           {},
		"constprop":      {ConstProp: true},
		"+deadcode":      {ConstProp: true, DeadCode: true},
		"+accesselim":    {ConstProp: true, DeadCode: true, AccessElim: true},
		"+fencemerge":    tcg.DefaultOpt(),
		"fencemergeonly": {FenceMerge: true},
	}
	for name, opt := range configs {
		opt := opt
		b.Run(name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				pb, err := k.Build(2, 1)
				if err != nil {
					b.Fatal(err)
				}
				img, err := pb.BuildGuest("main")
				if err != nil {
					b.Fatal(err)
				}
				rt, err := core.New(img, core.WithVariant(core.VariantRisotto), core.WithOptConfig(opt))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := rt.Run(); err != nil {
					b.Fatal(err)
				}
				cycles = rt.M.MaxCycles()
			}
			b.ReportMetric(float64(cycles), "simcycles/op")
		})
	}
}

// BenchmarkExplore measures the operational exploration engine: one op is
// a complete sleep-set DPOR enumeration of SB against the op-ref model
// (every reachable final state visited, differentially checked). The
// reported states/s is the transition throughput and coverage% the share
// of axiomatically allowed outcomes reached — 100 for a healthy engine —
// both recorded in BENCH_litmus.json by scripts/bench_snapshot.sh.
func BenchmarkExplore(b *testing.B) {
	p := litmus.SB()
	states := 0
	coverage := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := explore.Run(p, explore.Config{Mode: explore.ModeDPOR})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Violations) > 0 {
			b.Fatalf("exploration violation: %s", res.Violations[0].Reason)
		}
		states += res.States
		coverage = res.Coverage()
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(states)/s, "states/s")
	}
	b.ReportMetric(coverage, "coverage%")
}
