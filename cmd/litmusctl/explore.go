package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/explore"
	"repro/internal/litmus"
	"repro/internal/opcheck"
)

// exploreCorpus lists every named corpus test the exploration engine can
// be pointed at by name. Tests outside the compilable subset are skipped
// at run time (opcheck.ErrUnsupported), not excluded here.
func exploreCorpus() []*litmus.Program {
	return []*litmus.Program{
		litmus.MP(), litmus.SB(), litmus.SBFenced(), litmus.LB(), litmus.S(),
		litmus.R(), litmus.RFenced(), litmus.TwoPlusTwoW(), litmus.CoRR(),
		litmus.CoWW(), litmus.CoWR(), litmus.MPAddr(), litmus.LBAddr(),
		litmus.IRIW(), litmus.IRIWFenced(), litmus.WRC(), litmus.ISA2(),
		litmus.RWC(), litmus.RWCFenced(), litmus.MPQ(), litmus.SBQ(),
		litmus.SBAL(), litmus.SBALArm(), litmus.MPArm(), litmus.MPArmDMB(),
	}
}

// resolveTests maps positional arguments to programs: a known corpus test
// name (case-insensitive) or a .lit file path. No arguments = the whole
// corpus.
func resolveTests(args []string) ([]*litmus.Program, error) {
	corpus := exploreCorpus()
	if len(args) == 0 {
		return corpus, nil
	}
	byName := make(map[string]*litmus.Program, len(corpus))
	for _, p := range corpus {
		byName[strings.ToLower(p.Name)] = p
	}
	var out []*litmus.Program
	for _, a := range args {
		if p, ok := byName[strings.ToLower(a)]; ok {
			out = append(out, p)
			continue
		}
		if strings.HasSuffix(a, ".lit") {
			src, err := os.ReadFile(a)
			if err != nil {
				return nil, err
			}
			pt, err := litmus.Parse(string(src))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", a, err)
			}
			out = append(out, pt.Program)
			continue
		}
		return nil, fmt.Errorf("unknown test %q (not a corpus name or .lit file)", a)
	}
	return out, nil
}

// exploreCmd drives the operational exploration engine: seeded
// random-walk soak (walk), exhaustive sleep-set enumeration (dpor, naive)
// or byte-identical trace replay. Returns true when any exploration found
// a violation, a replay mismatched, or coverage was incomplete under an
// exhaustive mode.
func exploreCmd(args []string) bool {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr,
			"usage: litmusctl explore [-mode walk|dpor|naive|replay] [flags] [test|file.lit ...]")
		fs.PrintDefaults()
		os.Exit(2)
	}
	mode := fs.String("mode", "walk", "exploration mode: walk, dpor, naive, or replay")
	seeds := fs.Int("seeds", 0, "random walks per test (walk mode; 0 = 16)")
	seed := fs.Int64("seed", 0, "base seed for walk mode")
	maxStates := fs.Int("max-states", 0, "transition budget per test (0 = 1<<20); exhaustion = partial verdict")
	stepBudget := fs.Int("step-budget", 0, "per-walk transition cap (0 = 4096)")
	deadline := fs.Duration("deadline", 0, "wall-clock watchdog per test (0 = off)")
	model := fs.String("model", "", "axiomatic reference for the differential (default op-ref)")
	outFile := fs.String("out", "", "soak results file (JSONL); enables -resume")
	resume := fs.Bool("resume", false, "resume an interrupted soak from -out (same config required)")
	traceFile := fs.String("trace", "", "replay mode: trace file to re-execute")
	traceOut := fs.String("trace-out", "", "write the first violation/partial trace here")
	fs.Parse(args)

	cfg := explore.Config{
		Mode:       explore.Mode(*mode),
		Seeds:      *seeds,
		Seed:       *seed,
		MaxStates:  *maxStates,
		StepBudget: *stepBudget,
		Deadline:   *deadline,
		Model:      *model,
		Obs:        cf.Scope(),
	}

	switch cfg.Mode {
	case "replay":
		return replayCmd(*traceFile, fs.Args(), cfg)
	case explore.ModeWalk, explore.ModeDPOR, explore.ModeNaive:
	default:
		fmt.Fprintf(os.Stderr, "litmusctl: unknown explore mode %q (want walk, dpor, naive or replay)\n", *mode)
		os.Exit(2)
	}

	tests, err := resolveTests(fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "litmusctl:", err)
		os.Exit(2)
	}

	if *outFile != "" {
		soak, err := explore.RunFile(tests, cfg, *outFile, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "litmusctl:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "explore: %d tests (%d resumed) → %d violations, %d partial → %s\n",
			soak.Tests, soak.Resumed, soak.Violations, soak.Partial, *outFile)
		return soak.Violations > 0
	}

	failed := false
	var savedTrace bool
	fmt.Printf("%-12s %-6s %8s %8s %8s %10s %6s\n",
		"test", "mode", "runs", "states", "pruned", "coverage", "status")
	for _, p := range tests {
		start := time.Now()
		res, err := explore.Run(p, cfg)
		if err != nil {
			if errors.Is(err, opcheck.ErrUnsupported) {
				fmt.Printf("%-12s %-6s %8s %8s %8s %10s %6s\n", p.Name, *mode, "-", "-", "-", "-", "skip")
				continue
			}
			fmt.Fprintln(os.Stderr, "litmusctl:", err)
			os.Exit(1)
		}
		status := "ok"
		switch {
		case len(res.Violations) > 0:
			status = "FAIL"
			failed = true
		case res.Partial:
			status = "partial"
		case res.Covered < res.Allowed && cfg.Mode != explore.ModeWalk:
			// An exhaustive mode that completes without full coverage
			// means machine and model disagree in the other direction.
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-12s %-6s %8d %8d %8d %3d/%d (%3.0f%%) %6s  %s\n",
			res.Test, res.Mode, res.Runs, res.States, res.Pruned,
			res.Covered, res.Allowed, res.Coverage(), status, time.Since(start).Round(time.Millisecond))
		for _, v := range res.Violations {
			fmt.Printf("    violation: %s (%d decisions)\n", v.Reason, len(v.Trace))
		}
		if *traceOut != "" && !savedTrace {
			if tr, ok := res.FirstTrace(); ok {
				raw, err := explore.EncodeTrace(tr)
				if err == nil {
					err = os.WriteFile(*traceOut, raw, 0o644)
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "litmusctl: writing trace:", err)
					os.Exit(1)
				}
				savedTrace = true
				fmt.Fprintf(os.Stderr, "explore: trace written to %s (replay with: litmusctl explore -mode replay -trace %s)\n",
					*traceOut, *traceOut)
			}
		}
	}
	return failed
}

// replayCmd re-executes a recorded trace and byte-compares the re-recorded
// trace against the original — the reproducibility contract.
func replayCmd(path string, args []string, cfg explore.Config) bool {
	if path == "" {
		fmt.Fprintln(os.Stderr, "litmusctl: replay mode needs -trace FILE")
		os.Exit(2)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "litmusctl:", err)
		os.Exit(1)
	}
	tr, err := explore.DecodeTrace(bytes.NewReader(raw))
	if err != nil {
		fmt.Fprintln(os.Stderr, "litmusctl:", err)
		os.Exit(1)
	}
	// The program comes from the positional argument when given, else the
	// trace header's test name resolved against the corpus.
	lookup := args
	if len(lookup) == 0 {
		lookup = []string{tr.Header.Test}
	}
	tests, err := resolveTests(lookup)
	if err != nil {
		fmt.Fprintln(os.Stderr, "litmusctl:", err)
		os.Exit(1)
	}
	replayed, err := explore.Replay(tests[0], tr, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "litmusctl: replay:", err)
		os.Exit(1)
	}
	got, err := explore.EncodeTrace(*replayed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "litmusctl:", err)
		os.Exit(1)
	}
	if !bytes.Equal(raw, got) {
		fmt.Printf("replay MISMATCH for %s (%d decisions): recorded %q/%q, replayed %q/%q\n",
			tr.Header.Test, len(tr.Decisions), tr.Final.Verdict, tr.Final.Outcome,
			replayed.Final.Verdict, replayed.Final.Outcome)
		return true
	}
	fmt.Printf("replay ok: %s, %d decisions, verdict %s", tr.Header.Test, len(tr.Decisions), tr.Final.Verdict)
	if tr.Final.Outcome != "" {
		fmt.Printf(", outcome %q", tr.Final.Outcome)
	}
	fmt.Println(" — byte-identical")
	return false
}
