// Command litmusctl explores the axiomatic side of Risotto-Go: it runs the
// litmus corpus under every registered memory model, verifies the mapping
// schemes (Theorem 1), and reproduces the paper's §3 counterexamples.
//
// Usage:
//
//	litmusctl corpus           # outcome sets of every corpus test per model
//	litmusctl outcomes <name>  # one test's outcomes under all models
//	litmusctl models           # the model registry (names, aliases, levels)
//	litmusctl verify           # Theorem-1 sweep (verified schemes)
//	litmusctl matrix           # N×N model matrix over every scheme route
//	litmusctl errors           # QEMU's MPQ/SBQ errors + FMR
//	litmusctl sbal             # the Armed-Cats casal error and its fix
//	litmusctl run <file.lit>…  # run text-format tests' expectations
//	litmusctl campaign …       # stream a generated corpus through the
//	                           # Theorem-1 + soundness checks (JSONL results)
//	litmusctl explore …        # drive the operational machine's weak-memory
//	                           # nondeterminism: random-walk soak, DPOR
//	                           # enumeration, byte-identical trace replay
//
// The global -workers N flag (before the subcommand) bounds enumeration
// parallelism: 0, the default, uses every CPU; 1 forces the serial
// enumerator. -fault name[@N] arms the deterministic fault injector (e.g.
// shard-panic exercises the enumerator's panic-capture and serial
// fallback); an enumeration that fails beyond recovery exits with code 3.
// -metrics json|prom|text dumps the observability snapshot (enumerations,
// shards, cache hits/misses, serial fallbacks) after the subcommand, and
// -trace FILE writes the span ring buffer as JSON lines.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/cliflags"
	"repro/internal/litmus"
	"repro/internal/mapping"
	"repro/internal/memmodel"
	"repro/internal/models"
)

// cf and enumOpts carry the shared flag settings (workers, faults, the
// process-wide outcome cache and the root observability scope) to every
// enumeration this command performs.
var (
	cf       *cliflags.Set
	enumOpts []litmus.Option
)

func main() {
	cf = cliflags.Register(flag.CommandLine)
	flag.Usage = func() { usage() }
	flag.Parse()
	if err := cf.Check(); err != nil {
		fmt.Fprintln(os.Stderr, "litmusctl:", err)
		os.Exit(2)
	}
	// ^C mid-campaign flushes the partial summary and -metrics/-trace
	// outputs instead of dropping them (campaignCmd adds its own hook).
	cf.InterruptFlush()
	var err error
	enumOpts, err = cf.LitmusOptions()
	if err != nil {
		fmt.Fprintln(os.Stderr, "litmusctl:", err)
		os.Exit(2)
	}
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	failed := false
	switch args[0] {
	case "corpus":
		corpus()
	case "outcomes":
		if len(args) < 2 {
			usage()
		}
		outcomes(args[1])
	case "models":
		listModels()
	case "verify":
		fmt.Println(bench.VerifyReport(enumOpts...))
	case "matrix":
		failed = matrixCmd()
	case "errors":
		fmt.Println(bench.MotivationReport(enumOpts...))
	case "sbal":
		sbal()
	case "run":
		if len(args) < 2 {
			usage()
		}
		runFiles(args[1:])
	case "campaign":
		failed = campaignCmd(args[1:])
	case "explore":
		failed = exploreCmd(args[1:])
	default:
		usage()
	}
	if err := cf.Finish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "litmusctl:", err)
		os.Exit(1)
	}
	if failed {
		os.Exit(1)
	}
}

// runFiles parses and checks text-format litmus tests under every model.
func runFiles(paths []string) {
	failed := false
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "litmusctl: %v\n", err)
			os.Exit(1)
		}
		pt, err := litmus.Parse(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "litmusctl: %s: %v\n", path, err)
			os.Exit(1)
		}
		// A `model` directive scopes the expectations to the directive's
		// level; otherwise check under every canonical model (useful for
		// coherence tests that hold everywhere).
		checkModels := models.Default().Canonical()
		if l, ok := memmodel.ParseLevel(pt.Model); ok {
			checkModels = []memmodel.Model{models.ByLevel(l)}
		}
		for _, m := range checkModels {
			failures := litmus.CheckExpectations(pt, m)
			status := "ok"
			if len(failures) > 0 {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("%-24s %-12s %s\n", pt.Program.Name, m.Name(), status)
			for _, f := range failures {
				fmt.Printf("    %s\n", f)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// listModels prints the registry: every model with its level, aliases and
// whether it carries a prepared (allocation-reusing) checker.
func listModels() {
	fmt.Printf("%-22s %-6s %-9s %s\n", "MODEL", "LEVEL", "PREPARED", "ALIASES")
	for _, e := range models.Default().Entries() {
		kind := ""
		if e.Variant {
			kind = " (variant)"
		}
		fmt.Printf("%-22s %-6s %-9v %s%s\n",
			e.Name, e.Level, e.Prepared, strings.Join(e.Aliases, ", "), kind)
	}
}

// matrixCmd runs the full N×N verified-mapping matrix: every registered
// model pair, through every registered scheme route between their levels,
// over the x86 corpus. Exit is non-zero iff a verified route fails —
// known-bad (QEMU) routes are expected to keep failing and are reported
// without failing the command.
func matrixCmd() bool {
	res := mapping.Matrix(litmus.X86Corpus(), models.Default(), mapping.DefaultSchemes(),
		cf.Scope(), enumOpts...)
	fmt.Print(res.Render())
	return !res.AllVerifiedPass()
}

// enumerate computes an outcome set with the global options; an enumeration
// failure that survived the serial fallback (a real enumerator fault)
// prints the unified one-line trap report and exits with
// cliflags.TrapExitCode, exactly like a trapped risotto guest.
func enumerate(p *litmus.Program, m memmodel.Model) litmus.OutcomeSet {
	out, err := litmus.Enumerate(p, m, enumOpts...)
	if err != nil {
		exitTrap(err)
	}
	return out
}

// exitTrap ends the process on an unrecovered enumeration error: structured
// traps print the shared one-line report and exit with TrapExitCode;
// anything else is an internal error (exit 1).
func exitTrap(err error) {
	if line, ok := cliflags.TrapReport("litmusctl", err); ok {
		fmt.Fprintln(os.Stderr, line)
		os.Exit(cliflags.TrapExitCode)
	}
	fmt.Fprintf(os.Stderr, "litmusctl: %v\n", err)
	os.Exit(1)
}

func corpus() {
	for _, p := range litmus.X86Corpus() {
		fmt.Printf("%s:\n", p.Name)
		for _, m := range models.Default().Canonical() {
			out := enumerate(p, m)
			fmt.Printf("  %-12s %d outcomes\n", m.Name(), len(out))
		}
	}
	snap := cf.Scope().Snapshot()
	fmt.Printf("\nenumerations %d (cache: %d hits, %d misses; %d shards, %d serial fallbacks)\n",
		snap.Counter("litmus.enumerations"),
		snap.Counter("litmus.cache.hits"), snap.Counter("litmus.cache.misses"),
		snap.Counter("litmus.shards"), snap.Counter("litmus.serial_fallbacks"))
}

func outcomes(name string) {
	var prog *litmus.Program
	for _, p := range litmus.X86Corpus() {
		if p.Name == name {
			prog = p
			break
		}
	}
	if prog == nil {
		fmt.Fprintf(os.Stderr, "litmusctl: unknown test %q (see 'corpus')\n", name)
		os.Exit(1)
	}
	for _, m := range models.Default().Canonical() {
		fmt.Printf("%s under %s:\n", prog.Name, m.Name())
		for _, o := range enumerate(prog, m).Sorted() {
			fmt.Printf("  %s\n", o)
		}
	}
}

func sbal() {
	src := litmus.SBAL()
	tgt := litmus.SBALArm()
	x86 := models.MustLookup("x86-TSO")
	fmt.Println("SBAL (§3.3): x86 source vs Figure-3 Arm mapping (casal + LDAPR)")
	fmt.Printf("\nx86 outcomes:\n")
	for _, o := range enumerate(src, x86).Sorted() {
		fmt.Printf("  %s\n", o)
	}
	for _, name := range []string{"arm-cats-original", "arm-cats"} {
		m := models.MustLookup(name)
		fmt.Printf("\nArm outcomes under %s:\n", m.Name())
		for _, o := range enumerate(tgt, m).Sorted() {
			fmt.Printf("  %s\n", o)
		}
		ver := mapping.VerifyTheorem1(src, x86, tgt, m, enumOpts...)
		if ver.Err != nil {
			exitTrap(ver.Err)
		}
		if ver.Correct() {
			fmt.Println("→ mapping correct under this model")
		} else {
			fmt.Printf("→ mapping ERRONEOUS: new behaviours %v\n", ver.NewBehaviours)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: litmusctl [-workers N] [-fault name[@N]] [-metrics json|prom|text] [-trace FILE] {corpus|outcomes <name>|models|verify|matrix|errors|sbal|run <file.lit>…|campaign [flags]|explore [flags]}")
	os.Exit(2)
}
