package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/campaign"
	"repro/internal/litmusgen"
)

// campaignCmd runs a generated-corpus campaign: it streams cycle-generated
// litmus tests through the Theorem-1 and operational-soundness checks,
// appending one JSONL verdict record per test to -out. The human summary
// goes to stderr so stdout stays clean for -metrics dumps (litmusctl
// -metrics json campaign ... | obsvalidate). Returns true when any verdict
// failed; main exits 1 after the -metrics/-trace outputs are flushed.
func campaignCmd(args []string) bool {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr,
			"usage: litmusctl [shared flags] campaign [-out FILE] [-resume] [generator flags]")
		fs.PrintDefaults()
		os.Exit(2)
	}
	out := fs.String("out", "campaign.jsonl", "results file (JSONL, one verdict record per test)")
	resume := fs.Bool("resume", false, "resume an interrupted campaign from -out (same config required)")
	seed := fs.Int64("seed", 1, "generator seed (only affects -sample thinning)")
	shapes := fs.String("shapes", "", "comma-separated cycle families (default all: "+
		strings.Join(litmusgen.ShapeNames(), ",")+")")
	minThreads := fs.Int("min-threads", 0, "minimum ring size for N-thread families (0 = default 2)")
	maxThreads := fs.Int("max-threads", 0, "maximum ring size for N-thread families (0 = default 3)")
	levels := fs.String("levels", "", "instruction levels: x86, arm or x86,arm (default both)")
	maxTests := fs.Int("max-tests", 0, "cap on total unique tests (0 = no cap)")
	maxPerShape := fs.Int("max-per-shape", 0, "cap per (shape, level) stream, stride-sampled (0 = no cap)")
	sample := fs.Float64("sample", 0, "keep each variant with this probability (0 or ≥1 = keep all)")
	opcheckSeeds := fs.Int("opcheck-seeds", 0,
		"seeds per operational soundness check (0 = default, negative = skip opcheck)")
	exploreSeeds := fs.Int("explore-seeds", 0,
		"random-walk explorations per test against the op-ref model (0 = off)")
	fs.Parse(args)

	gen := litmusgen.Config{
		Seed:        *seed,
		MinThreads:  *minThreads,
		MaxThreads:  *maxThreads,
		MaxTests:    *maxTests,
		MaxPerShape: *maxPerShape,
		Sample:      *sample,
	}
	if *shapes != "" {
		gen.Shapes = strings.Split(*shapes, ",")
		if err := litmusgen.ValidShapes(gen.Shapes); err != nil {
			fmt.Fprintln(os.Stderr, "litmusctl:", err)
			os.Exit(2)
		}
	}
	var err error
	if gen.Levels, err = litmusgen.ParseLevels(*levels); err != nil {
		fmt.Fprintln(os.Stderr, "litmusctl:", err)
		os.Exit(2)
	}

	cfg := campaign.Config{
		Gen:          gen,
		Workers:      cf.WorkerCount(),
		OpcheckSeeds: *opcheckSeeds,
		ExploreSeeds: *exploreSeeds,
		Obs:          cf.Scope(),
	}
	// On interrupt, report how far the campaign got from the live obs
	// counters (records already on disk are resumable with -resume).
	cf.AddFlushHook(func() {
		snap := cf.Scope().Snapshot()
		fmt.Fprintf(os.Stderr,
			"campaign: interrupted after %d tests (%d pass, %d fail, %d skip); resume with -resume -out %s\n",
			snap.Counter("campaign.tests"),
			snap.Counter("campaign.verdict.pass"),
			snap.Counter("campaign.verdict.fail"),
			snap.Counter("campaign.verdict.skip"),
			*out)
	})
	sum, err := campaign.RunFile(cfg, *out, *resume)
	if err != nil {
		fmt.Fprintln(os.Stderr, "litmusctl:", err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr,
		"campaign: %d tests (%d resumed) → %d pass, %d fail, %d skip; %d checks run, %d skipped\n",
		sum.Tests, sum.Resumed, sum.Pass, sum.Fail, sum.Skip, sum.ChecksRun, sum.ChecksSkipped)
	fmt.Fprintf(os.Stderr,
		"campaign: generator enumerated %d variants (%d sampled out, %d duplicates), emitted %d unique\n",
		sum.Gen.Enumerated, sum.Gen.Sampled, sum.Gen.Duplicates, sum.Gen.Emitted)
	fmt.Fprintf(os.Stderr, "campaign: %.1f tests/s over %s → %s\n",
		sum.TestsPerSec, sum.Elapsed.Round(1e6), *out)
	for _, f := range sum.Failures {
		fmt.Fprintf(os.Stderr, "  FAIL #%d %s (%s): %s\n", f.Idx, f.Name, f.Level, f.Detail)
	}
	if sum.Fail > 0 {
		fmt.Fprintf(os.Stderr, "campaign: %d FAILING verdicts\n", sum.Fail)
	}
	return sum.Fail > 0
}
