// Command risobench regenerates the Risotto paper's evaluation figures on
// the simulated testbed.
//
// Usage:
//
//	risobench fig12 [-threads N] [-scale N] [-kernels a,b,c]
//	risobench fig13 [-calls N]
//	risobench fig14 [-calls N]
//	risobench fig15 [-ops N]
//	risobench motivation     # §3 translation-error reproduction
//	risobench verify         # §5.4 Theorem-1 sweep over the corpus
//	risobench campaign       # generated-corpus campaign throughput
//	risobench all
//
// The shared -workers/-fault/-fault-seed flags tune the litmus
// enumerations behind motivation/verify; -metrics and -trace dump the
// observability snapshot and span trace after the run. With -csv DIR,
// fig12 additionally writes BENCH_fig12.json carrying each workload's
// metric columns from the risotto run's snapshot.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/litmusgen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	threads := fs.Int("threads", 4, "guest thread count (fig12)")
	scale := fs.Int("scale", 1, "problem-size multiplier (fig12)")
	kernels := fs.String("kernels", "", "comma-separated kernel subset (fig12)")
	calls := fs.Int("calls", 0, "library invocation count (fig13/fig14; 0 = defaults)")
	ops := fs.Int("ops", 0, "CAS ops per thread (fig15; 0 = default)")
	csvDir := fs.String("csv", "", "also write raw results as CSV into this directory")
	genSeed := fs.Int64("seed", 1, "generator seed (campaign)")
	maxPerShape := fs.Int("max-per-shape", 25, "generated tests per shape/level stream (campaign; 0 = no cap)")
	maxTests := fs.Int("max-tests", 0, "cap on total generated tests (campaign; 0 = no cap)")
	opcheckSeeds := fs.Int("opcheck-seeds", 2, "seeds per soundness check (campaign; negative = skip opcheck)")
	cf := cliflags.Register(fs)
	cf.AddTierUp(fs)
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	check(cf.Check())
	enumOpts, err := cf.LitmusOptions()
	check(err)

	run := func(name string) {
		switch name {
		case "fig12":
			var names []string
			if *kernels != "" {
				names = strings.Split(*kernels, ",")
			}
			var extra []core.Option
			if cf.TierUp.Enabled {
				extra = append(extra, core.WithTierUp(core.TierUpConfig{
					Enabled:          true,
					PromoteThreshold: cf.TierUp.PromoteThreshold,
					SuperblockMax:    cf.TierUp.SuperblockMax,
				}))
			}
			rows, err := bench.Fig12(*threads, *scale, names, extra...)
			check(err)
			fmt.Println(bench.RenderFig12(rows))
			if *csvDir != "" {
				check(bench.WriteFig12CSV(*csvDir, rows))
				check(bench.WriteFig12JSON(*csvDir, rows))
			}
		case "fig13":
			rows, err := bench.Fig13(*calls)
			check(err)
			fmt.Println(bench.RenderLinkRows("Figure 13: OpenSSL and sqlite via the dynamic host linker", rows, "ops/s"))
			if *csvDir != "" {
				check(bench.WriteLinkCSV(*csvDir, "fig13.csv", rows))
			}
		case "fig14":
			rows, err := bench.Fig14(*calls)
			check(err)
			fmt.Println(bench.RenderLinkRows("Figure 14: math library via the dynamic host linker", rows, "ops/ms"))
			if *csvDir != "" {
				check(bench.WriteLinkCSV(*csvDir, "fig14.csv", rows))
			}
		case "fig15":
			rows, err := bench.Fig15(*ops)
			check(err)
			fmt.Println(bench.RenderFig15(rows))
			if *csvDir != "" {
				check(bench.WriteFig15CSV(*csvDir, rows))
			}
		case "motivation":
			fmt.Println(bench.MotivationReport(enumOpts...))
		case "verify":
			fmt.Println(bench.VerifyReport(enumOpts...))
		case "campaign":
			cfg := campaign.Config{
				Gen: litmusgen.Config{
					Seed:        *genSeed,
					MaxTests:    *maxTests,
					MaxPerShape: *maxPerShape,
				},
				Workers:      cf.WorkerCount(),
				OpcheckSeeds: *opcheckSeeds,
				Obs:          cf.Scope(),
			}
			sum, err := bench.CampaignRun(cfg)
			check(err)
			fmt.Println(bench.RenderCampaign(cfg, sum))
			if sum.Fail > 0 {
				check(fmt.Errorf("campaign: %d failing verdicts", sum.Fail))
			}
		default:
			usage()
		}
	}

	if cmd == "all" {
		for _, name := range []string{"motivation", "verify", "fig12", "fig13", "fig14", "fig15"} {
			run(name)
		}
	} else {
		run(cmd)
	}
	check(cf.Finish(os.Stdout))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "risobench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: risobench {fig12|fig13|fig14|fig15|motivation|verify|campaign|all} [flags]")
	os.Exit(2)
}
