// Command obsvalidate checks that a metrics snapshot produced by
// `-metrics json` is well formed: the four sections are present, counters
// are non-negative integers, histogram buckets are consistent, and span
// totals add up. It reads the document from a file argument or stdin and
// exits nonzero on a malformed document, so the verification gate can pipe
// a live run through it.
//
// Usage:
//
//	risotto -kernel histogram -metrics json | obsvalidate
//	obsvalidate snapshot.json
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	var data []byte
	var err error
	switch len(os.Args) {
	case 1:
		data, err = io.ReadAll(os.Stdin)
	case 2:
		data, err = os.ReadFile(os.Args[1])
	default:
		fmt.Fprintln(os.Stderr, "usage: obsvalidate [snapshot.json]")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsvalidate:", err)
		os.Exit(1)
	}
	if err := obs.ValidateSnapshotJSON(data); err != nil {
		fmt.Fprintln(os.Stderr, "obsvalidate:", err)
		os.Exit(1)
	}
	fmt.Println("ok")
}
