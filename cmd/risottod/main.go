// Command risottod is the translation daemon: it serves the DBT stack
// over HTTP/JSON to multiple tenants, surviving hostile guests through
// admission control, per-tenant circuit breakers, watchdogged execution
// with self-healing, transient-fault retry and a crash-safe persistent
// translation cache. See internal/serve for the engine and DESIGN.md
// §"Service architecture" for the isolation layers.
//
// Server mode (default):
//
//	risottod -listen 127.0.0.1:8077 -cache /var/tmp/risotto-cache.jsonl
//
// Client mode (-submit or -snapshot): a minimal driver for scripts and
// smoke tests, speaking the same JSON API any HTTP client can.
//
//	risottod -submit -addr 127.0.0.1:8077 -tenant alice -kernel histogram
//	risottod -snapshot -addr 127.0.0.1:8077 | obsvalidate
//
// Exit codes in client mode follow the CLI convention: 0 for a completed
// job, 3 (cliflags.TrapExitCode) when the job trapped, 1 for errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliflags"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/transcache"
)

func main() {
	fs := flag.NewFlagSet("risottod", flag.ExitOnError)

	// Mode selection.
	submit := fs.Bool("submit", false, "client mode: submit one job to -addr and print the response")
	snapshot := fs.Bool("snapshot", false, "client mode: print the daemon's bare metrics snapshot JSON")

	// Server flags.
	listen := fs.String("listen", "127.0.0.1:8077", "server: address to serve the job API and metrics on")
	addrFile := fs.String("addr-file", "", "server: write the bound address to FILE once listening (for scripts using :0)")
	cachePath := fs.String("cache", "", "server: persistent translation cache journal (empty = cache off)")
	workers := fs.Int("serve-workers", 0, "server: worker pool size (0 = default)")
	queueDepth := fs.Int("queue-depth", 0, "server: global job queue bound beyond the worker pool")
	tenantInflight := fs.Int("tenant-inflight", 0, "server: per-tenant concurrent job limit")
	tenantQueue := fs.Int("tenant-queue", 0, "server: per-tenant admitted (queued+running) job limit")
	breakerN := fs.Int("breaker-threshold", 0, "server: consecutive trapped jobs that trip a tenant's breaker")
	breakerBackoff := fs.Duration("breaker-backoff", 0, "server: initial breaker open interval")
	retries := fs.Int("job-retries", -1, "server: retry budget for transiently-trapped jobs (-1 = default)")
	stepCap := fs.Uint64("step-budget-cap", 0, "server: per-job step budget cap (jobs may only tighten)")
	deadlineCap := fs.Duration("deadline-cap", 0, "server: per-job wall-clock cap")
	memSize := fs.Int("mem-size", 0, "server: per-job machine memory bytes (0 = core default)")

	// Client flags.
	addr := fs.String("addr", "127.0.0.1:8077", "client: daemon address")
	tenant := fs.String("tenant", "default", "client: tenant identity")
	kernel := fs.String("kernel", "", "client: kernel name to run (alternative to -image)")
	threads := fs.Int("threads", 1, "client: kernel thread count")
	scale := fs.Int("scale", 1, "client: kernel problem scale")
	imageFile := fs.String("image", "", "client: guest image file to run (alternative to -kernel)")
	variant := fs.String("variant", "", "client: DBT variant (default risotto)")
	stepBudget := fs.Uint64("step-budget", 0, "client: per-job step budget (0 = server cap)")
	deadlineMS := fs.Int64("deadline-ms", 0, "client: per-job deadline in ms (0 = server cap)")
	jobFault := fs.String("job-fault", "", "client: per-job fault spec list (name[@N],...)")
	jobFaultSeed := fs.Int64("job-fault-seed", 1, "client: per-job fault injector seed")

	cf := cliflags.Register(fs)
	cf.AddTierUp(fs)
	fs.Parse(os.Args[1:])

	switch {
	case *submit && *snapshot:
		fmt.Fprintln(os.Stderr, "risottod: -submit and -snapshot are exclusive")
		os.Exit(2)
	case *submit:
		os.Exit(clientSubmit(*addr, serve.JobRequest{
			Tenant:     *tenant,
			Kernel:     *kernel,
			Threads:    *threads,
			Scale:      *scale,
			Variant:    *variant,
			StepBudget: *stepBudget,
			DeadlineMS: *deadlineMS,
			Fault:      *jobFault,
			FaultSeed:  *jobFaultSeed,
		}, *imageFile))
	case *snapshot:
		os.Exit(clientSnapshot(*addr))
	}

	os.Exit(runServer(serverConfig{
		listen: *listen, addrFile: *addrFile, cachePath: *cachePath,
		cf: cf,
		serve: serve.Config{
			Workers:           *workers,
			QueueDepth:        *queueDepth,
			TenantMaxInflight: *tenantInflight,
			TenantQueueDepth:  *tenantQueue,
			BreakerThreshold:  *breakerN,
			BreakerBackoff:    *breakerBackoff,
			MaxRetries:        *retries,
			StepBudgetCap:     *stepCap,
			DeadlineCap:       *deadlineCap,
			MemSize:           *memSize,
			Seed:              cf.FaultSeed,
			TierUp:            cf.TierUp.Enabled,
			PromoteThreshold:  cf.TierUp.PromoteThreshold,
			SuperblockMax:     cf.TierUp.SuperblockMax,
		},
	}))
}

type serverConfig struct {
	listen    string
	addrFile  string
	cachePath string
	cf        *cliflags.Set
	serve     serve.Config
}

func runServer(sc serverConfig) int {
	root := obs.NewScope("")
	sc.serve.Obs = root

	// The server-level injector arms daemon sites — in particular
	// cache-corrupt, which sabotages persistent-cache appends so the
	// verify-on-load path can be exercised end to end.
	inj, err := sc.cf.Injector()
	if err != nil {
		fmt.Fprintln(os.Stderr, "risottod:", err)
		return 2
	}

	if sc.cachePath != "" {
		cache, err := transcache.Open(sc.cachePath, transcache.Options{
			Obs:      root,
			Injector: inj,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "risottod: opening cache:", err)
			return 1
		}
		sc.serve.Cache = cache
		st := cache.Stats()
		fmt.Fprintf(os.Stderr, "risottod: cache %s: %d entries loaded, %d corrupt skipped\n",
			sc.cachePath, st.Loaded, st.CorruptSkipped)
	}

	srv := serve.New(sc.serve)
	ln, err := net.Listen("tcp", sc.listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "risottod:", err)
		return 1
	}
	if sc.addrFile != "" {
		if err := os.WriteFile(sc.addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "risottod:", err)
			return 1
		}
	}
	fmt.Fprintf(os.Stderr, "risottod: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "risottod: %s: draining\n", got)
	case err := <-done:
		fmt.Fprintln(os.Stderr, "risottod: serve:", err)
		return 1
	}

	// Graceful drain: stop admitting (Drain flips the flag before
	// waiting), finish in-flight jobs, flush and close the cache
	// journal, then stop the listener.
	if err := srv.Drain(); err != nil {
		fmt.Fprintln(os.Stderr, "risottod: drain:", err)
		return 1
	}
	ctxErr := hs.Close()
	if ctxErr != nil {
		fmt.Fprintln(os.Stderr, "risottod: close:", ctxErr)
		return 1
	}
	if err := sc.cf.Finish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "risottod:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "risottod: drained cleanly")
	return 0
}

func clientSubmit(addr string, req serve.JobRequest, imageFile string) int {
	if imageFile != "" {
		raw, err := os.ReadFile(imageFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "risottod:", err)
			return 1
		}
		req.Image = raw
		req.Kernel = ""
	}
	body, err := json.Marshal(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "risottod:", err)
		return 1
	}
	hc := &http.Client{Timeout: 60 * time.Second}
	resp, err := hc.Post("http://"+addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, "risottod:", err)
		return 1
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "risottod:", err)
		return 1
	}
	os.Stdout.Write(raw)
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "risottod: HTTP %d\n", resp.StatusCode)
		return 1
	}
	var jr serve.JobResponse
	if err := json.Unmarshal(raw, &jr); err != nil {
		fmt.Fprintln(os.Stderr, "risottod:", err)
		return 1
	}
	switch jr.Status {
	case serve.StatusOK:
		return 0
	case serve.StatusTrap:
		fmt.Fprintf(os.Stderr, "risottod: job trapped: %s\n", jr.Trap.Kind)
		return cliflags.TrapExitCode
	default:
		fmt.Fprintf(os.Stderr, "risottod: job error: %s\n", jr.Error)
		return 1
	}
}

func clientSnapshot(addr string) int {
	hc := &http.Client{Timeout: 10 * time.Second}
	resp, err := hc.Get("http://" + addr + "/metrics.json")
	if err != nil {
		fmt.Fprintln(os.Stderr, "risottod:", err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "risottod: HTTP %d\n", resp.StatusCode)
		return 1
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fmt.Fprintln(os.Stderr, "risottod:", err)
		return 1
	}
	return 0
}
