package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles a command of this module into dir and returns the
// binary path. `go run` does not propagate the child's exit code, and the
// trap-exit contract is exactly about exit codes, so subprocess tests need
// a real binary.
func buildCLI(t *testing.T, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// TestTrapExitCodeAndReportLine pins the scripted-caller contract for both
// CLIs: an unrecovered trap exits with code 3 and stderr carries exactly
// one "<tool>: trap[kind] ..." report line.
func TestTrapExitCodeAndReportLine(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs subprocesses")
	}
	dir := t.TempDir()
	cases := []struct {
		tool   string
		pkg    string
		args   []string
		prefix string
	}{
		{
			tool:   "risotto",
			pkg:    "repro/cmd/risotto",
			args:   []string{"-kernel", "histogram", "-threads", "2", "-fault", "decode@3"},
			prefix: "risotto: trap[decode]",
		},
		{
			tool:   "litmusctl",
			pkg:    "repro/cmd/litmusctl",
			args:   []string{"-workers", "1", "-fault", "shard-panic", "corpus"},
			prefix: "litmusctl: trap[worker-panic]",
		},
	}
	for _, tc := range cases {
		bin := buildCLI(t, dir, tc.pkg)
		var stderr bytes.Buffer
		cmd := exec.Command(bin, tc.args...)
		cmd.Stderr = &stderr
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%s: err = %v, want non-zero exit", tc.tool, err)
		}
		if code := ee.ExitCode(); code != 3 {
			t.Errorf("%s: exit code = %d, want 3\nstderr:\n%s", tc.tool, code, stderr.String())
		}
		var reports []string
		for _, line := range strings.Split(strings.TrimSpace(stderr.String()), "\n") {
			if strings.Contains(line, "trap[") {
				reports = append(reports, line)
			}
		}
		if len(reports) != 1 || !strings.HasPrefix(reports[0], tc.prefix) {
			t.Errorf("%s: trap report lines = %q, want one line with prefix %q",
				tc.tool, reports, tc.prefix)
		}
	}
}

// TestReplayCLIRoundTrip drives the crash-triage loop through the real
// binary: a trapped run writes a bundle, -replay reproduces it with exit 0,
// and the re-bundle is byte-identical.
func TestReplayCLIRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs subprocesses")
	}
	dir := t.TempDir()
	bin := buildCLI(t, dir, "repro/cmd/risotto")
	bundle := filepath.Join(dir, "crash.json")
	rebundle := filepath.Join(dir, "crash2.json")

	crash := exec.Command(bin, "-kernel", "histogram", "-threads", "2",
		"-fault", "decode@3", "-bundle", bundle)
	var stderr bytes.Buffer
	crash.Stderr = &stderr
	err := crash.Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 3 {
		t.Fatalf("crash run: err = %v, want exit 3\nstderr:\n%s", err, stderr.String())
	}
	orig, err := os.ReadFile(bundle)
	if err != nil {
		t.Fatalf("no crash bundle written: %v", err)
	}

	replay := exec.Command(bin, "-replay", bundle, "-bundle", rebundle)
	out, err := replay.CombinedOutput()
	if err != nil {
		t.Fatalf("replay did not reproduce the trap: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "reproduced") {
		t.Errorf("replay output lacks reproduction notice:\n%s", out)
	}
	again, err := os.ReadFile(rebundle)
	if err != nil {
		t.Fatalf("replay wrote no re-bundle: %v", err)
	}
	if !bytes.Equal(orig, again) {
		t.Errorf("re-bundle differs from original (%d vs %d bytes)", len(orig), len(again))
	}
}
