package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// runScoped executes the histogram kernel under the risotto variant with
// an instrumented runtime, the same configuration `risotto -kernel
// histogram -metrics json` uses.
func runScoped(t *testing.T) (*core.Runtime, *obs.Scope) {
	t.Helper()
	scope := obs.NewScope("")
	k, err := workloads.KernelByName("histogram")
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.Build(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	img, err := b.BuildGuest("main")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.New(img, core.WithVariant(core.VariantRisotto), core.WithObs(scope))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return rt, scope
}

// TestMetricNamesGolden pins the shape of the snapshot — which metrics an
// instrumented run registers — so a renamed or dropped metric fails
// loudly. Re-bless with `go test ./cmd/risotto -run Golden -update`.
func TestMetricNamesGolden(t *testing.T) {
	_, scope := runScoped(t)
	got := strings.Join(scope.Snapshot().MetricNames(), "\n") + "\n"

	golden := filepath.Join("testdata", "metric_names.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to bless)", err)
	}
	if got != string(want) {
		t.Errorf("metric shape changed (re-bless with -update if intended)\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestStatsFacadeMatchesRegistry is the differential check behind the
// Stats migration: the typed façade must read exactly the registry
// counters the pipeline incremented.
func TestStatsFacadeMatchesRegistry(t *testing.T) {
	rt, scope := runScoped(t)
	st := rt.Stats()
	snap := scope.Snapshot()
	for _, c := range []struct {
		name   string
		facade uint64
	}{
		{"core.blocks", st.Blocks},
		{"core.guest_bytes", st.GuestBytes},
		{"core.host_insts", st.HostInsts},
		{"core.fences.dmb_full", st.DMBFull},
		{"core.fences.dmb_load", st.DMBLoad},
		{"core.fences.dmb_store", st.DMBStore},
		{"core.atomics.casal", st.Casal},
		{"core.atomics.excl_loop", st.ExclLoop},
		{"core.helper_calls", st.HelperCalls},
		{"core.host_calls", st.HostCalls},
		{"core.syscalls", st.Syscalls},
		{"core.chain_patches", st.ChainPatches},
		{"core.cache_flushes", st.CacheFlushes},
		{"core.selfheal.quarantines", st.Quarantines},
		{"core.selfheal.demotions", st.Demotions},
		{"core.selfheal.divergences", st.Divergences},
		{"core.selfheal.heals", st.Heals},
		{"core.selfheal.selfchecks", st.SelfChecks},
		{"core.selfheal.interp_blocks", st.InterpBlocks},
		{"core.selfheal.promotions", st.Promotions},
		{"core.superblock.blocks", st.Superblocks},
		{"core.cache.shard_contention", st.ShardContention},
		{"tcg.fence_merges_cross_block", st.CrossBlockFenceMerges},
	} {
		if got := snap.Counter(c.name); got != c.facade {
			t.Errorf("%s: registry %d, Stats façade %d", c.name, got, c.facade)
		}
	}
	if st.Blocks == 0 {
		t.Error("no blocks translated — instrumented run did nothing")
	}
}

// TestPipelineSpansRecorded checks the per-stage trace: a real run must
// record decode and emission spans.
func TestPipelineSpansRecorded(t *testing.T) {
	_, scope := runScoped(t)
	spans := scope.Snapshot().Spans
	for _, phase := range []string{"frontend.decode", "tcg.opt", "backend.emit"} {
		if spans.ByPhase[phase] == 0 {
			t.Errorf("no %q spans recorded (total %d)", phase, spans.Total)
		}
	}
}

// TestMetricsJSONValidates renders the snapshot the way `-metrics json`
// does and runs it through the schema check obsvalidate applies.
func TestMetricsJSONValidates(t *testing.T) {
	_, scope := runScoped(t)
	var buf bytes.Buffer
	if err := obs.Dump(&buf, scope.Snapshot(), obs.FormatJSON); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateSnapshotJSON(buf.Bytes()); err != nil {
		t.Fatalf("snapshot JSON fails validation: %v\n%s", err, buf.String())
	}
}
