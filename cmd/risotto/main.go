// Command risotto runs a benchmark guest program under the Risotto-Go DBT
// and prints execution statistics — the quickest way to see the translator
// at work.
//
// Usage:
//
//	risotto -kernel histogram [-variant risotto] [-threads 4] [-scale 1]
//	risotto -kernel histogram -emit histogram.riso   # save the guest image
//	risotto -image histogram.riso                    # run a saved image
//	risotto -kernel histogram -metrics json          # machine-readable stats
//	risotto -kernel histogram -trace run.jsonl       # per-stage span trace
//	risotto -kernel histogram -listen :8090          # live /metrics endpoint
//	risotto -kernel histogram -selfcheck             # verify every block
//	risotto -kernel histogram -bundle crash.json     # triage doc on a trap
//	risotto -replay crash.json                       # reproduce a bundle
//	risotto -list
//
// With -metrics the human stats block is suppressed and stdout carries only
// the snapshot document, so the output can be piped straight into
// obsvalidate or a metrics collector. -listen keeps the process alive after
// the run serving /metrics (Prometheus text) and /debug/obs (JSON).
//
// -selfheal turns on tiered recovery: a trap attributed to a translated
// block quarantines it and retranslates one optimization tier lower
// (full → no fence merging → no optimization → interpreter) instead of
// killing the run. -selfcheck (implies -selfheal) additionally
// shadow-executes every freshly translated block against the TCG
// interpreter and quarantines on divergence. An unrecovered trap with
// -bundle set writes a deterministic crash-triage bundle; -replay rebuilds
// the exact run from such a bundle and exits 0 only when the recorded trap
// reproduces (with -bundle naming the re-bundle to write for byte-level
// comparison).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/bench"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/guestimg"
	"repro/internal/selfheal"
	"repro/internal/workloads"
)

func main() {
	kernel := flag.String("kernel", "", "workload kernel to run (see -list)")
	variant := flag.String("variant", "risotto", "DBT variant: qemu | no-fences | tcg-ver | risotto")
	threads := flag.Int("threads", 4, "guest thread count")
	scale := flag.Int("scale", 1, "problem-size multiplier")
	native := flag.Bool("native", false, "also run the native build for comparison")
	chain := flag.Bool("chain", false, "enable translation-block chaining")
	dump := flag.Bool("dump", false, "disassemble the translated blocks after the run")
	emit := flag.String("emit", "", "write the guest image to a file instead of running")
	imagePath := flag.String("image", "", "run a saved guest image (.riso)")
	list := flag.Bool("list", false, "list available kernels")
	stepBudget := flag.Uint64("step-budget", 0, "per-vCPU host-instruction watchdog budget (0 = unlimited)")
	deadline := flag.Duration("deadline", 0, "wall-clock watchdog for the run (0 = none)")
	selfHeal := flag.Bool("selfheal", false, "quarantine trapping blocks and retranslate one tier lower instead of dying")
	selfCheck := flag.Bool("selfcheck", false, "shadow-verify every translated block against the TCG interpreter (implies -selfheal)")
	bundlePath := flag.String("bundle", "", "write a crash-triage bundle to FILE on an unrecovered trap (with -replay: the re-bundle)")
	replayPath := flag.String("replay", "", "replay a crash-triage bundle and verify the recorded trap reproduces")
	cf := cliflags.Register(flag.CommandLine)
	cf.AddListen(flag.CommandLine)
	cf.AddTierUp(flag.CommandLine)
	flag.Parse()
	check(cf.Check())
	// ^C during a long run still flushes the -metrics/-trace outputs.
	cf.InterruptFlush()

	inject, err := cf.Injector()
	check(err)
	scope := cf.Scope()
	// -metrics claims stdout for the snapshot document; suppress the human
	// report so the output stays machine-parsable.
	quiet := cf.Metrics != ""
	runOpts := func(v core.Variant) []core.Option {
		opts := []core.Option{
			core.WithVariant(v),
			core.WithChain(*chain),
			core.WithStepBudget(*stepBudget),
			core.WithDeadline(*deadline),
			core.WithSelfHeal(*selfHeal),
			core.WithSelfCheck(*selfCheck),
			core.WithProvenance(*kernel, cf.Fault, cf.FaultSeed),
			core.WithFaults(inject),
			core.WithObs(scope),
		}
		if cf.TierUp.Enabled {
			opts = append(opts, core.WithTierUp(core.TierUpConfig{
				Enabled:          true,
				PromoteThreshold: cf.TierUp.PromoteThreshold,
				SuperblockMax:    cf.TierUp.SuperblockMax,
			}))
		}
		return opts
	}

	if *list {
		for _, k := range workloads.Registry() {
			fmt.Printf("%-18s (%s)\n", k.Name, k.Suite)
		}
		return
	}

	listenAddr, err := cf.Serve()
	check(err)
	if listenAddr != "" {
		fmt.Fprintf(os.Stderr, "risotto: serving http://%s/metrics and /debug/obs\n", listenAddr)
	}

	if *replayPath != "" {
		replay(cf, *replayPath, *bundlePath, quiet)
		finish(cf, listenAddr)
		return
	}

	if *imagePath != "" {
		data, err := os.ReadFile(*imagePath)
		check(err)
		img, err := guestimg.Decode(data)
		check(err)
		v, err := core.ParseVariant(*variant)
		check(err)
		rt, err := core.New(img, runOpts(v)...)
		check(err)
		code := runGuest(rt, *bundlePath)
		if !quiet {
			fmt.Printf("image       %s (entry %#x)\n", *imagePath, img.Entry)
			printStats(v, code, rt)
		}
		finish(cf, listenAddr)
		return
	}

	if *kernel == "" {
		flag.Usage()
		os.Exit(2)
	}

	v, err := core.ParseVariant(*variant)
	check(err)

	k, err := workloads.KernelByName(*kernel)
	check(err)
	b, err := k.Build(*threads, *scale)
	check(err)

	if *emit != "" {
		img, err := b.BuildGuest("main")
		check(err)
		check(os.WriteFile(*emit, img.Encode(), 0o644))
		fmt.Printf("wrote %s (%d bytes, entry %#x)\n", *emit, len(img.Encode()), img.Entry)
		return
	}

	img, err := b.BuildGuest("main")
	check(err)
	rt, err := core.New(img, runOpts(v)...)
	check(err)
	code := runGuest(rt, *bundlePath)

	if !quiet {
		fmt.Printf("kernel      %s (%s), threads=%d scale=%d\n", k.Name, k.Suite, *threads, *scale)
		printStats(v, code, rt)
	}

	if *dump {
		pcs := rt.BlockPCs()
		sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
		for _, pc := range pcs {
			text, err := rt.DisassembleBlock(pc)
			check(err)
			fmt.Println()
			fmt.Print(text)
		}
	}

	if *native {
		b, err := k.Build(*threads, *scale)
		check(err)
		ncycles, ncode, err := bench.RunNative(b)
		check(err)
		fmt.Printf("\nnative      checksum %d, cycles %d (%.2fx faster)\n",
			ncode, ncycles, float64(rt.M.MaxCycles())/float64(ncycles))
		if ncode != code {
			fmt.Fprintln(os.Stderr, "risotto: WARNING: native checksum differs!")
			os.Exit(1)
		}
	}

	finish(cf, listenAddr)
}

// replay rebuilds the run a crash bundle describes and verifies the
// recorded trap reproduces: exit 0 only when the re-run traps and the trap
// matches the bundle's (same kind, PC, CPU); a clean completion or a
// different trap is a divergence (exit 1). With rebundle set, the re-run's
// own crash bundle is written for byte-level comparison with the original.
func replay(cf *cliflags.Set, path, rebundle string, quiet bool) {
	data, err := os.ReadFile(path)
	check(err)
	b, err := selfheal.DecodeBundle(data)
	check(err)
	cfg, img, err := core.ReplayConfig(b)
	check(err)
	cfg.Obs = cf.Scope()
	// Replay goes through the Config shim: bundles record the full replay
	// Config verbatim. Tier-up is deliberately absent from bundles — its
	// background promotion timing is not replayable — so replays run the
	// deterministic foreground pipeline only.
	rt, err := core.NewFromConfig(cfg, img)
	check(err)
	_, runErr := rt.Run()

	tr, trapped := faults.As(runErr)
	if !trapped {
		if runErr != nil {
			check(runErr)
		}
		fmt.Fprintf(os.Stderr, "risotto: replay diverged: run completed cleanly, bundle recorded trap[%s]\n",
			b.Trap.Kind)
		os.Exit(1)
	}
	if rebundle != "" {
		nb, err := rt.CrashBundle(b.Tool, runErr)
		check(err)
		enc, err := nb.Encode()
		check(err)
		check(os.WriteFile(rebundle, enc, 0o644))
	}
	if !b.Trap.Matches(tr) {
		fmt.Fprintf(os.Stderr, "risotto: replay diverged: got %s, bundle recorded trap[%s] cpu=%d pc=%#x\n",
			tr.Error(), b.Trap.Kind, b.Trap.CPU, b.Trap.PC)
		os.Exit(1)
	}
	if !quiet {
		fmt.Printf("replay      %s reproduced: %s\n", path, tr.Error())
	}
}

// finish emits the -metrics and -trace outputs, then parks the process on
// the -listen endpoint when one is up (a finished run would otherwise tear
// the scrape target down immediately).
func finish(cf *cliflags.Set, listenAddr string) {
	check(cf.Finish(os.Stdout))
	if listenAddr != "" {
		fmt.Fprintln(os.Stderr, "risotto: run complete; endpoint stays up (interrupt to exit)")
		select {}
	}
}

// runGuest executes the guest. A structured trap (watchdog, injected or
// natural fault) prints the unified one-line report and exits with
// cliflags.TrapExitCode, distinct from usage (2) and internal (1) errors;
// with bundlePath set the trap is first serialized as a crash-triage
// bundle for -replay.
func runGuest(rt *core.Runtime, bundlePath string) uint64 {
	code, err := rt.Run()
	if err == nil {
		return code
	}
	if line, ok := cliflags.TrapReport("risotto", err); ok {
		if bundlePath != "" {
			if enc, berr := encodeCrashBundle(rt, err); berr != nil {
				fmt.Fprintln(os.Stderr, "risotto: crash bundle:", berr)
			} else if werr := os.WriteFile(bundlePath, enc, 0o644); werr != nil {
				fmt.Fprintln(os.Stderr, "risotto: crash bundle:", werr)
			} else {
				fmt.Fprintf(os.Stderr, "risotto: wrote crash bundle %s\n", bundlePath)
			}
		}
		fmt.Fprintln(os.Stderr, line)
		os.Exit(cliflags.TrapExitCode)
	}
	check(err)
	return 0
}

// encodeCrashBundle builds and serializes the crash-triage bundle for an
// unrecovered trap.
func encodeCrashBundle(rt *core.Runtime, runErr error) ([]byte, error) {
	b, err := rt.CrashBundle("risotto", runErr)
	if err != nil {
		return nil, err
	}
	return b.Encode()
}

func printStats(v core.Variant, code uint64, rt *core.Runtime) {
	st := rt.Stats()
	cycles := rt.M.MaxCycles()
	fmt.Printf("variant     %v\n", v)
	fmt.Printf("checksum    %d\n", code)
	fmt.Printf("cycles      %d (%.3f ms at 2 GHz)\n", cycles, float64(cycles)/bench.ClockHz*1e3)
	fmt.Printf("blocks      %d translated (%d guest bytes, %d host insts)\n",
		st.Blocks, st.GuestBytes, st.HostInsts)
	fmt.Printf("fences      DMBFF=%d DMBLD=%d DMBST=%d (static, per translated code)\n",
		st.DMBFull, st.DMBLoad, st.DMBStore)
	fmt.Printf("            DMBFF=%d DMBLD=%d DMBST=%d executed (dynamic)\n",
		rt.M.DMBExec[0], rt.M.DMBExec[1], rt.M.DMBExec[2])
	fmt.Printf("atomics     casal=%d exclusive-loops=%d helper-calls=%d\n",
		st.Casal, st.ExclLoop, st.HelperCalls)
	fmt.Printf("syscalls    %d, host-linked calls %d, chain patches %d\n",
		st.Syscalls, st.HostCalls, st.ChainPatches)
	if st.CacheFlushes > 0 {
		fmt.Printf("degradation %d code-cache flush-and-retranslate cycles\n", st.CacheFlushes)
	}
	if st.Quarantines > 0 || st.Divergences > 0 || st.Heals > 0 {
		fmt.Printf("selfheal    quarantines=%d demotions=%d divergences=%d heals=%d (selfchecks=%d, interp blocks=%d)\n",
			st.Quarantines, st.Demotions, st.Divergences, st.Heals,
			st.SelfChecks, st.InterpBlocks)
	}
	if st.Promotions > 0 {
		fmt.Printf("tierup      promotions=%d superblocks=%d (%d guest blocks) cross-block fence merges=%d\n",
			st.Promotions, st.Superblocks, st.SuperblockGuestBlocks, st.CrossBlockFenceMerges)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "risotto:", err)
		os.Exit(1)
	}
}
